//===- core/detect/GrainTable.h - Address-to-grain metadata -----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The granularity-generic shadow table (paper Section 2.2 at any level of
/// the hierarchy): constant-time mapping from an address to its grain's
/// metadata via bit shifting, possible because the heap arena and global
/// segment ranges are known up front. Per grain it keeps
///
///  - a stage-1 write counter (the susceptibility filter),
///  - optionally (TrackHomes) the first-touch *home node* — CAS-published
///    once by whichever access touches the grain first, mirroring the OS
///    first-touch placement policy,
///  - a lazily materialized `InfoT` pointer for susceptible grains.
///
/// All of it is lock-free in the default build: counters are relaxed
/// atomics, homes and details are CAS-published (losing allocators delete
/// their copy), and a materialized GrainInfo is internally lock-free.
/// Building with -DCHEETAH_LOCKED_TABLE=ON restores the PR-1 striped grain
/// mutexes around detail mutation for A/B benchmarking.
///
/// ## Epoch-sharded ingestion
///
/// The table also owns the **per-thread shard registry**: each ingesting OS
/// thread lazily registers a shard (a map from grain base to a plain-field
/// GrainShardRecord) and accumulates into it with zero cross-thread CAS
/// traffic; `quiesce()` folds every shard back into the shared atomics in
/// deterministic order (shards by registration order, grains by address)
/// and reports merge totals so callers can prove conservation against the
/// shared-table counters. Shards key on the *ingesting OS thread*, not the
/// sample's tid — several OS threads may legitimately deliver samples
/// carrying the same simulated tid, and single-writer shard ownership must
/// hold regardless. The machinery is always compiled (benchmarks and the
/// merge-conservation tests exercise it in every build);
/// -DCHEETAH_SHARDED_TABLE=ON merely routes `record()` through it.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_GRAINTABLE_H
#define CHEETAH_CORE_DETECT_GRAINTABLE_H

#include "mem/MemoryAccess.h"
#include "mem/NumaTopology.h"
#include "support/Assert.h"
#include "support/CpuFeatures.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#if CHEETAH_LOCKED_TABLE
#include <array>
#include <bit>
#endif

namespace cheetah {
namespace core {

/// One contiguous monitored address range (heap arena or global segment).
struct ShadowRegion {
  uint64_t Base = 0;
  uint64_t Size = 0;
};

/// What one quiesce() folded back into the shared table — the evidence the
/// conservation proof checks against the detector's own counters.
struct GrainMergeStats {
  uint64_t Shards = 0;  ///< shards visited (including empty ones)
  uint64_t Records = 0; ///< per-grain shard records merged
  uint64_t Accesses = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  uint64_t Invalidations = 0;
  uint64_t RemoteAccesses = 0;

  GrainMergeStats &operator+=(const GrainMergeStats &Other) {
    Shards += Other.Shards;
    Records += Other.Records;
    Accesses += Other.Accesses;
    Writes += Other.Writes;
    Cycles += Other.Cycles;
    Invalidations += Other.Invalidations;
    RemoteAccesses += Other.RemoteAccesses;
    return *this;
  }
};

/// Counters folded out of evicted grains — the per-stage residue a
/// budgeted table keeps so conservation still proves out: residue plus the
/// live grain counters equals everything ever recorded, no matter how many
/// eviction epochs have passed.
struct GrainEvictionStats {
  uint64_t Grains = 0; ///< eviction events (a re-materialized grain counts again)
  uint64_t Accesses = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  uint64_t Invalidations = 0;
  uint64_t RemoteAccesses = 0;
};

namespace detail {
/// Globally unique id per GrainTable instance, never reused — what makes
/// the per-thread shard cache safe against table destruction (a stale
/// cache entry can never match a new table).
uint64_t nextGrainRegistryId();
/// Thread-local lookup of this thread's shard for the table \p RegistryId;
/// nullptr on miss (including after eviction, which just re-registers).
void *cachedShardFor(uint64_t RegistryId);
/// Stores \p Shard as this thread's entry for \p RegistryId.
void cacheShard(uint64_t RegistryId, void *Shard);
} // namespace detail

/// Flat-array grain metadata over a set of monitored regions,
/// parameterized by the detailed record type and whether first-touch homes
/// are tracked. ShadowMemory and PageTable are thin instantiations.
template <typename InfoT, bool TrackHomes> class GrainTable {
public:
  using Info = InfoT;
  using ActorId = typename InfoT::ActorId;
  using Context = typename InfoT::Context;
  using ShardRecord = typename InfoT::ShardRecord;

  /// \p EmptyRegionMsg / \p AlignmentMsg are the assertion texts for the
  /// two region-validation failures, so each instantiation keeps its
  /// historical diagnostics.
  GrainTable(unsigned GrainShift, uint64_t BucketsPerGrain,
             std::vector<ShadowRegion> Regions, const char *EmptyRegionMsg,
             const char *AlignmentMsg)
      : GrainShift(GrainShift), GrainSize(uint64_t(1) << GrainShift),
        BucketsPerGrain(BucketsPerGrain),
        RegistryId(detail::nextGrainRegistryId()) {
    for (const ShadowRegion &Region : Regions) {
      CHEETAH_ASSERT(Region.Size > 0, EmptyRegionMsg);
      CHEETAH_ASSERT((Region.Base & (GrainSize - 1)) == 0, AlignmentMsg);
      Slab NewSlab;
      NewSlab.Base = Region.Base;
      NewSlab.Size = Region.Size;
      NewSlab.Grains = static_cast<size_t>(
          (Region.Size + GrainSize - 1) >> GrainShift);
      NewSlab.WriteCounts =
          std::make_unique<std::atomic<uint32_t>[]>(NewSlab.Grains);
      NewSlab.Details =
          std::make_unique<std::atomic<InfoT *>[]>(NewSlab.Grains);
      if constexpr (TrackHomes)
        NewSlab.Homes = std::make_unique<std::atomic<NodeId>[]>(NewSlab.Grains);
      for (size_t I = 0; I < NewSlab.Grains; ++I) {
        NewSlab.WriteCounts[I].store(0, std::memory_order_relaxed);
        NewSlab.Details[I].store(nullptr, std::memory_order_relaxed);
        if constexpr (TrackHomes)
          NewSlab.Homes[I].store(NoNode, std::memory_order_relaxed);
      }
      Slabs.push_back(std::move(NewSlab));
    }
  }

  ~GrainTable() {
    reclaimRetired();
    for (Slab &Region : Slabs)
      for (size_t I = 0; I < Region.Grains; ++I) {
        InfoT *Info = Region.Details[I].load(std::memory_order_relaxed);
        if (Info != evictedMark())
          delete Info;
      }
  }

  GrainTable(const GrainTable &) = delete;
  GrainTable &operator=(const GrainTable &) = delete;

  /// \returns true if \p Address falls inside a monitored region. Accesses
  /// elsewhere (stack, kernel, libraries) are filtered out (Section 4.1).
  bool covers(uint64_t Address) const { return slabFor(Address) != nullptr; }

  /// The monitored regions, in registration order — what a BatchDecoder
  /// needs to evaluate this table's coverage data-parallel.
  std::vector<ShadowRegion> regions() const {
    std::vector<ShadowRegion> Result;
    Result.reserve(Slabs.size());
    for (const Slab &Region : Slabs)
      Result.push_back({Region.Base, Region.Size});
    return Result;
  }

  /// Software-prefetches the grain's stage-1 write counter (write intent:
  /// the counter is about to take an atomic RMW). The batched ingestion
  /// loop issues these a fixed distance ahead so the random-address
  /// counter walk overlaps cache misses instead of serializing them.
  /// Safe on any address; a no-op outside the monitored regions.
  void prefetchWriteCounter(uint64_t Address) const {
    if (const Slab *Region = slabFor(Address))
      support::prefetchForWrite(
          &Region->WriteCounts[grainIndexIn(*Region, Address)]);
  }

  /// Software-prefetches the grain's detail-pointer slot (read intent).
  void prefetchDetail(uint64_t Address) const {
    if (const Slab *Region = slabFor(Address))
      support::prefetchForRead(
          &Region->Details[grainIndexIn(*Region, Address)]);
  }

  /// Software-prefetches the grain's first-touch home slot (write intent:
  /// an untouched grain is about to CAS-publish its home).
  void prefetchHome(uint64_t Address) const
    requires TrackHomes
  {
    if (const Slab *Region = slabFor(Address))
      support::prefetchForWrite(
          &Region->Homes[grainIndexIn(*Region, Address)]);
  }

  /// Atomically increments the write counter of \p Address's grain.
  /// \returns the new count. \p Address must be covered.
  uint32_t noteWrite(uint64_t Address) {
    Slab *Region = slabFor(Address);
    CHEETAH_ASSERT(Region != nullptr, "noteWrite outside monitored regions");
    return Region->WriteCounts[grainIndexIn(*Region, Address)].fetch_add(
               1, std::memory_order_relaxed) +
           1;
  }

  /// Current write count of \p Address's grain (0 if never written).
  uint32_t writeCount(uint64_t Address) const {
    const Slab *Region = slabFor(Address);
    CHEETAH_ASSERT(Region != nullptr, "writeCount outside monitored regions");
    return Region->WriteCounts[grainIndexIn(*Region, Address)].load(
        std::memory_order_relaxed);
  }

  /// Records a touch by \p Node: publishes it as the grain's first-touch
  /// home if the grain was untouched, and returns the (now settled) home.
  /// Called on every covered sample regardless of phase — homes are a
  /// placement property, not a sharing observation.
  NodeId noteTouch(uint64_t Address, NodeId Node)
    requires TrackHomes
  {
    Slab *Region = slabFor(Address);
    CHEETAH_ASSERT(Region != nullptr, "noteTouch outside monitored regions");
    std::atomic<NodeId> &Home = Region->Homes[grainIndexIn(*Region, Address)];
    NodeId Current = Home.load(std::memory_order_relaxed);
    if (Current != NoNode)
      return Current;
    if (Home.compare_exchange_strong(Current, Node,
                                     std::memory_order_relaxed))
      return Node;
    // Another touch won first-touch publication; its node is the home.
    return Current;
  }

  /// The grain's first-touch home node, or NoNode if never touched.
  NodeId homeNode(uint64_t Address) const
    requires TrackHomes
  {
    const Slab *Region = slabFor(Address);
    CHEETAH_ASSERT(Region != nullptr, "homeNode outside monitored regions");
    return Region->Homes[grainIndexIn(*Region, Address)].load(
        std::memory_order_relaxed);
  }

  /// \returns the detailed info for \p Address's grain, or nullptr if it
  /// was never materialized (or was evicted — an evicted grain reads as
  /// unmaterialized and must re-earn tracking through the stage-1 filter).
  /// \p Address must be covered.
  InfoT *detail(uint64_t Address) {
    Slab *Region = slabFor(Address);
    CHEETAH_ASSERT(Region != nullptr, "detail outside monitored regions");
    InfoT *Info = Region->Details[grainIndexIn(*Region, Address)].load(
        std::memory_order_acquire);
    return Info == evictedMark() ? nullptr : Info;
  }
  const InfoT *detail(uint64_t Address) const {
    const Slab *Region = slabFor(Address);
    CHEETAH_ASSERT(Region != nullptr, "detail outside monitored regions");
    const InfoT *Info = Region->Details[grainIndexIn(*Region, Address)].load(
        std::memory_order_acquire);
    return Info == evictedMark() ? nullptr : Info;
  }

  /// Materializes (if needed) and returns the detailed info for the grain.
  /// Safe to race: exactly one allocation wins publication. A slot in the
  /// Evicted state re-materializes the same way a never-tracked one does —
  /// the grain starts a fresh record (decay), its history living on in the
  /// eviction residue.
  InfoT &materializeDetail(uint64_t Address) {
    Slab *Region = slabFor(Address);
    CHEETAH_ASSERT(Region != nullptr, "materialize outside monitored regions");
    std::atomic<InfoT *> &Slot =
        Region->Details[grainIndexIn(*Region, Address)];
    InfoT *Existing = Slot.load(std::memory_order_acquire);
    if (Existing && Existing != evictedMark())
      return *Existing;
    auto *Fresh = new InfoT(BucketsPerGrain);
    while (true) {
      if (Slot.compare_exchange_weak(Existing, Fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        MaterializedCount.fetch_add(1, std::memory_order_relaxed);
        return *Fresh;
      }
      if (Existing && Existing != evictedMark()) {
        // Another ingesting thread won the race; use its published info.
        delete Fresh;
        return *Existing;
      }
      // Lost to a null<->Evicted transition; retry with the fresh copy.
    }
  }

#if CHEETAH_LOCKED_TABLE
  /// The PR-1 striped lock serializing mutation of \p Address's grain
  /// detail. Only exists in the locked A/B build; the default ingestion
  /// path is lock-free and this member is compiled out.
  std::mutex &grainLock(uint64_t Address) {
    // Fibonacci hash of the grain index spreads adjacent grains across
    // stripes; the top bits of the product index the stripe array.
    static_assert((LockStripeCount & (LockStripeCount - 1)) == 0,
                  "stripe count must be a power of two");
    constexpr unsigned Shift = 64 - std::bit_width(LockStripeCount - 1);
    uint64_t Grain = Address >> GrainShift;
    return LockStripes[(Grain * 0x9e3779b97f4a7c15ull) >> Shift];
  }
#endif

  /// First byte address of the grain containing \p Address.
  uint64_t grainBase(uint64_t Address) const {
    return Address & ~(GrainSize - 1);
  }

  /// Records one decoded sample into \p Info through the build's configured
  /// ingestion mode: per-thread shard (CHEETAH_SHARDED_TABLE), striped
  /// mutex (CHEETAH_LOCKED_TABLE), or the default lock-free shared path.
  bool record(uint64_t Address, InfoT &Info, ThreadId Tid, ActorId Actor,
              AccessKind Kind, uint64_t Bucket, uint64_t Span,
              uint64_t LatencyCycles, const Context &Ctx = {}) {
#if CHEETAH_SHARDED_TABLE
    return recordSharded(Address, Info, Tid, Actor, Kind, Bucket, Span,
                         LatencyCycles, Ctx);
#else
#if CHEETAH_LOCKED_TABLE
    std::lock_guard<std::mutex> Lock(grainLock(Address));
#else
    (void)Address;
#endif
    return Info.record(Tid, Actor, Kind, Bucket, Span, LatencyCycles, Ctx);
#endif
  }

  /// The sharded ingestion path, callable in every build (benchmarks and
  /// conservation tests A/B it against the shared path): accumulates into
  /// this OS thread's shard with no cross-thread CAS traffic beyond the
  /// shared two-entry table transition. \p Info must be the materialized
  /// detail for \p Address's grain.
  bool recordSharded(uint64_t Address, InfoT &Info, ThreadId Tid,
                     ActorId Actor, AccessKind Kind, uint64_t Bucket,
                     uint64_t Span, uint64_t LatencyCycles,
                     const Context &Ctx = {}) {
    ShardRecord &Record = localShard().Records[grainBase(Address)];
    return Info.recordShard(Record, Tid, Actor, Kind, Bucket, Span,
                            LatencyCycles, Ctx);
  }

  /// Epoch quiesce: folds every shard back into the shared atomics and
  /// empties the shards, so successive epochs merge only their deltas.
  /// Deterministic — shards merge in registration order, grains in address
  /// order. Must not run concurrently with sharded ingestion; the caller
  /// provides the happens-before edge (thread join / phase barrier).
  GrainMergeStats quiesce() {
    GrainMergeStats Stats;
    std::lock_guard<std::mutex> Lock(ShardMutex);
    for (auto &ShardPtr : Shards) {
      ++Stats.Shards;
      std::vector<uint64_t> Bases;
      Bases.reserve(ShardPtr->Records.size());
      for (const auto &Entry : ShardPtr->Records)
        Bases.push_back(Entry.first);
      std::sort(Bases.begin(), Bases.end());
      for (uint64_t Base : Bases) {
        const ShardRecord &Record = ShardPtr->Records[Base];
        InfoT *Info = detail(Base);
        CHEETAH_ASSERT(Info != nullptr,
                       "shard record for an unmaterialized grain");
        Info->mergeShard(Record);
        ++Stats.Records;
        Stats.Accesses += Record.Accesses;
        Stats.Writes += Record.Writes;
        Stats.Cycles += Record.Cycles;
        Stats.Invalidations += Record.Invalidations;
        Stats.RemoteAccesses += Record.Extras.remoteAccesses();
      }
      ShardPtr->Records.clear();
    }
    return Stats;
  }

  /// Number of registered per-thread shards (tests/benchmarks).
  size_t shardCount() const {
    std::lock_guard<std::mutex> Lock(ShardMutex);
    return Shards.size();
  }

  /// Invokes \p Fn(grainBaseAddress, homeNode, info) for every
  /// materialized grain; home is NoNode when homes are untracked. Evicted
  /// grains are skipped (their counters live in the residue).
  template <typename Function> void forEachGrain(Function Fn) const {
    for (const Slab &Region : Slabs)
      for (size_t I = 0; I < Region.Grains; ++I) {
        const InfoT *Info = Region.Details[I].load(std::memory_order_acquire);
        if (Info && Info != evictedMark())
          Fn(Region.Base + (static_cast<uint64_t>(I) << GrainShift),
             Region.Homes ? Region.Homes[I].load(std::memory_order_relaxed)
                          : NoNode,
             *Info);
      }
  }

  /// Number of grains with materialized detail (O(1): maintained as a
  /// counter on publication, not by scanning the slabs).
  size_t materializedGrains() const {
    return MaterializedCount.load(std::memory_order_relaxed);
  }

  /// Bytes of shadow metadata currently allocated: the flat per-grain slab
  /// arrays (write counters, detail pointers, homes when tracked) plus the
  /// exact footprint of every materialized info record, so the memory
  /// ablation reports honest numbers.
  size_t metadataBytes() const {
    size_t Bytes = 0;
    for (const Slab &Region : Slabs) {
      Bytes += Region.Grains * sizeof(std::atomic<uint32_t>);
      if (Region.Homes)
        Bytes += Region.Grains * sizeof(std::atomic<NodeId>);
      Bytes += Region.Grains * sizeof(std::atomic<InfoT *>);
      for (size_t I = 0; I < Region.Grains; ++I) {
        const InfoT *Info = Region.Details[I].load(std::memory_order_acquire);
        if (Info && Info != evictedMark())
          Bytes += Info->footprintBytes();
      }
    }
    return Bytes;
  }

  //===--------------------------------------------------------------------===//
  // Bounded-memory continuous operation: byte budget, cold-grain eviction,
  // epoch-quiesce-fenced reclamation.
  //===--------------------------------------------------------------------===//

  /// Installs the byte budget enforceBudget() trims to (0 = unbounded,
  /// the default — budget-less tables behave exactly as before). Also
  /// allocates the per-grain epoch-write baselines the coldness ranking
  /// reads, so only budgeted tables pay for them. Call before ingestion
  /// starts or under the same fence as enforceBudget().
  void setByteBudget(size_t Bytes) {
    ByteBudget = Bytes;
    if (Bytes == 0)
      return;
    for (Slab &Region : Slabs)
      if (!Region.EpochWrites)
        Region.EpochWrites = std::make_unique<uint32_t[]>(Region.Grains);
  }

  /// The installed byte budget (0 = unbounded).
  size_t byteBudget() const { return ByteBudget; }

  /// Counters folded out of evicted grains so far. Stable between epoch
  /// boundaries; read it after quiesce()/enforceBudget() for a consistent
  /// conservation check (residue + live counters == totals ever recorded).
  const GrainEvictionStats &evictedResidue() const { return Residue; }

  /// Total heap bytes behind this table — the denominator the eviction
  /// budget is enforced against. Unlike metadataBytes() (the
  /// report-visible shadow-bytes number, which intentionally keeps its
  /// historical meaning), this also counts the sharded-mode shard records,
  /// the budgeted-mode epoch baselines, and any not-yet-reclaimed retired
  /// infos. Must not race sharded ingestion (same fence as quiesce()).
  size_t footprintBytes() const {
    size_t Bytes = metadataBytes() + shardBytes();
    for (const Slab &Region : Slabs)
      if (Region.EpochWrites)
        Bytes += Region.Grains * sizeof(uint32_t);
    for (const InfoT *Info : Retired)
      Bytes += Info->footprintBytes();
    return Bytes;
  }

  /// Heap bytes behind the per-thread shard registry, by allocation-size
  /// arithmetic: each shard's map (hash-bucket array plus one node —
  /// key/value pair and chain pointer — per record) and each record's
  /// vector capacities. Same fence contract as quiesce().
  size_t shardBytes() const {
    std::lock_guard<std::mutex> Lock(ShardMutex);
    size_t Bytes = 0;
    for (const auto &ShardPtr : Shards) {
      Bytes += sizeof(Shard);
      Bytes += ShardPtr->Records.bucket_count() * sizeof(void *);
      for (const auto &Entry : ShardPtr->Records)
        Bytes += shardRecordBytes(Entry.second);
    }
    return Bytes;
  }

  /// Allocation-size arithmetic for one shard record: the map node (pair
  /// plus the chain pointer every node-based unordered_map carries) and
  /// the capacities of its lazily sized vectors.
  static size_t shardRecordBytes(const ShardRecord &Record) {
    return sizeof(std::pair<const uint64_t, ShardRecord>) + sizeof(void *) +
           Record.Buckets.capacity() * sizeof(Record.Buckets[0]) +
           Record.Threads.capacity() * sizeof(Record.Threads[0]) +
           Record.Extras.heapBytes();
  }

  /// Best-effort trim to the byte budget; a no-op when unbudgeted or
  /// already under budget. Must run under the same fence as quiesce() —
  /// no ingestion in flight — typically right after it at an epoch
  /// boundary.
  ///
  /// Grains are ranked coldest-first by writes since the previous epoch
  /// boundary (ties: fewer lifetime accesses, then lower address, so the
  /// sweep is fully deterministic). Each victim's Details slot is
  /// CAS-claimed from its info pointer into the Evicted state, its
  /// counters fold into the residue, its stage-1 write counter resets to
  /// zero (decay: the grain must re-earn materialization), and the info
  /// retires onto the free list — reclaimed before returning, still
  /// inside the fenced window, so no ingesting thread can hold a stale
  /// pointer. The flat slab arrays are a fixed floor the budget cannot
  /// trim below; eviction stops when the evictable portion is exhausted.
  /// \returns the number of grains evicted.
  size_t enforceBudget() {
    if (ByteBudget == 0)
      return 0;
    size_t Footprint = footprintBytes();
    size_t Evicted = 0;
    if (Footprint > ByteBudget) {
      struct Candidate {
        uint64_t EpochWrites; // writes since the last epoch boundary
        uint64_t Accesses;    // lifetime accesses (tiebreak)
        uint64_t Base;        // grain base address (final tiebreak)
        Slab *Region;
        size_t Index;
      };
      std::vector<Candidate> Candidates;
      for (Slab &Region : Slabs)
        for (size_t I = 0; I < Region.Grains; ++I) {
          InfoT *Info = Region.Details[I].load(std::memory_order_acquire);
          if (!Info || Info == evictedMark())
            continue;
          uint32_t Writes =
              Region.WriteCounts[I].load(std::memory_order_relaxed);
          uint32_t Baseline =
              Region.EpochWrites ? Region.EpochWrites[I] : 0;
          Candidates.push_back(
              {Writes >= Baseline ? Writes - Baseline : 0, Info->accesses(),
               Region.Base + (static_cast<uint64_t>(I) << GrainShift),
               &Region, I});
        }
      std::sort(Candidates.begin(), Candidates.end(),
                [](const Candidate &A, const Candidate &B) {
                  if (A.EpochWrites != B.EpochWrites)
                    return A.EpochWrites < B.EpochWrites;
                  if (A.Accesses != B.Accesses)
                    return A.Accesses < B.Accesses;
                  return A.Base < B.Base;
                });
      for (const Candidate &Victim : Candidates) {
        if (Footprint <= ByteBudget)
          break;
        std::atomic<InfoT *> &Slot = Victim.Region->Details[Victim.Index];
        InfoT *Info = Slot.load(std::memory_order_acquire);
        if (!Info || Info == evictedMark())
          continue;
        // CAS-claim the packed word into the Evicted state. Under the
        // fence this cannot fail; the CAS keeps the transition an atomic
        // publication for any later re-materialization to synchronize on.
        if (!Slot.compare_exchange_strong(Info, evictedMark(),
                                          std::memory_order_acq_rel))
          continue;
        Residue.Grains += 1;
        Residue.Accesses += Info->accesses();
        Residue.Writes += Info->writes();
        Residue.Cycles += Info->cycles();
        Residue.Invalidations += Info->invalidations();
        Residue.RemoteAccesses += Info->remoteAccesses();
        Victim.Region->WriteCounts[Victim.Index].store(
            0, std::memory_order_relaxed);
        MaterializedCount.fetch_sub(1, std::memory_order_relaxed);
        Footprint -= Info->footprintBytes();
        Retired.push_back(Info);
        ++Evicted;
      }
    }
    // Roll the coldness window: next epoch's ranking measures write
    // traffic from this boundary on (evicted grains restart at zero).
    for (Slab &Region : Slabs)
      if (Region.EpochWrites)
        for (size_t I = 0; I < Region.Grains; ++I)
          Region.EpochWrites[I] =
              Region.WriteCounts[I].load(std::memory_order_relaxed);
    reclaimRetired();
    return Evicted;
  }

  /// Deletes every retired info. Only call inside the quiesce-fenced
  /// window (enforceBudget does; the destructor too). \returns how many
  /// records were reclaimed.
  size_t reclaimRetired() {
    size_t Count = Retired.size();
    for (InfoT *Info : Retired)
      delete Info;
    Retired.clear();
    return Count;
  }

private:
  struct Slab {
    uint64_t Base = 0;
    uint64_t Size = 0;
    size_t Grains = 0;
    std::unique_ptr<std::atomic<uint32_t>[]> WriteCounts; // one per grain
    std::unique_ptr<std::atomic<NodeId>[]> Homes; // first-touch (TrackHomes)
    std::unique_ptr<std::atomic<InfoT *>[]> Details; // one per grain
    /// Per-grain write-count baseline at the previous epoch boundary — the
    /// coldness ranking's reference point. Allocated only when a byte
    /// budget is installed; written solely under the enforceBudget fence.
    std::unique_ptr<uint32_t[]> EpochWrites;
  };

  /// The Evicted state of a Details slot: a sentinel distinct from null
  /// and from any allocation, never dereferenced. detail() maps it to
  /// nullptr so evicted grains read as unmaterialized; materializeDetail
  /// CASes it back out when a grain re-earns tracking.
  static InfoT *evictedMark() {
    return reinterpret_cast<InfoT *>(static_cast<uintptr_t>(1));
  }

  /// One OS thread's accumulation epoch: only its owner writes Records
  /// during ingestion; quiesce() reads after the owner synchronized.
  struct Shard {
    std::unordered_map<uint64_t, ShardRecord> Records;
  };

  const Slab *slabFor(uint64_t Address) const {
    for (const Slab &Region : Slabs)
      if (Address >= Region.Base && Address < Region.Base + Region.Size)
        return &Region;
    return nullptr;
  }
  Slab *slabFor(uint64_t Address) {
    return const_cast<Slab *>(
        static_cast<const GrainTable *>(this)->slabFor(Address));
  }
  size_t grainIndexIn(const Slab &Region, uint64_t Address) const {
    return static_cast<size_t>((Address - Region.Base) >> GrainShift);
  }

  /// This OS thread's shard for this table, registering one on first use
  /// (or after cache eviction — a thread may own several shards of one
  /// table; single-writer ownership holds either way).
  Shard &localShard() {
    if (void *Cached = detail::cachedShardFor(RegistryId))
      return *static_cast<Shard *>(Cached);
    auto Fresh = std::make_unique<Shard>();
    Shard *Raw = Fresh.get();
    {
      std::lock_guard<std::mutex> Lock(ShardMutex);
      Shards.push_back(std::move(Fresh));
    }
    detail::cacheShard(RegistryId, Raw);
    return *Raw;
  }

  unsigned GrainShift;
  uint64_t GrainSize;
  uint64_t BucketsPerGrain;
  uint64_t RegistryId;
  std::vector<Slab> Slabs;
#if CHEETAH_LOCKED_TABLE
  static constexpr size_t LockStripeCount = 64;
  std::array<std::mutex, LockStripeCount> LockStripes;
#endif
  std::atomic<size_t> MaterializedCount{0};
  /// Guards shard registration and merge; never taken on the per-sample
  /// ingestion path (the thread-local cache short-circuits it).
  mutable std::mutex ShardMutex;
  std::vector<std::unique_ptr<Shard>> Shards;
  /// Byte budget for enforceBudget (0 = unbounded). Plain: installed
  /// before ingestion, read only at fenced epoch boundaries.
  size_t ByteBudget = 0;
  /// Counters folded out of evicted grains; mutated only under the
  /// enforceBudget fence.
  GrainEvictionStats Residue;
  /// Evicted infos awaiting reclamation — the epoch-quiesce-fenced free
  /// list. Normally drained before enforceBudget returns; never touched
  /// while ingestion threads are in flight.
  std::vector<InfoT *> Retired;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_GRAINTABLE_H
