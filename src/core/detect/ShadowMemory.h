//===- core/detect/ShadowMemory.h - Address-to-line metadata ----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow memory (paper Section 2.2): constant-time mapping from an address
/// to its cache line's metadata via bit shifting, possible because the heap
/// arena and global segment ranges are known up front. A thin line-grain
/// instantiation of the generic GrainTable — see GrainTable.h for the slab
/// layout, lock-free publication discipline, table-mode dispatch
/// (default / CHEETAH_LOCKED_TABLE / CHEETAH_SHARDED_TABLE), and the
/// epoch-shard registry.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_SHADOWMEMORY_H
#define CHEETAH_CORE_DETECT_SHADOWMEMORY_H

#include "core/detect/CacheLineInfo.h"
#include "core/detect/GrainTable.h"
#include "mem/CacheGeometry.h"

namespace cheetah {
namespace core {

/// Flat-array shadow metadata over a set of monitored regions.
class ShadowMemory : public GrainTable<CacheLineInfo, /*TrackHomes=*/false> {
public:
  ShadowMemory(const CacheGeometry &Geometry, std::vector<ShadowRegion> Regions)
      : GrainTable(Geometry.lineShift(), Geometry.wordsPerLine(),
                   std::move(Regions), "empty shadow region",
                   "shadow region must be line-aligned"),
        Geometry(Geometry) {}

#if CHEETAH_LOCKED_TABLE
  /// The PR-1 striped lock serializing mutation of \p Address's line
  /// detail (locked A/B build only).
  std::mutex &lineLock(uint64_t Address) { return grainLock(Address); }
#endif

  /// First byte address of the line containing \p Address.
  uint64_t lineBase(uint64_t Address) const {
    return Geometry.lineBase(Address);
  }

  /// Invokes \p Fn(lineBaseAddress, info) for every materialized line.
  template <typename Function> void forEachDetail(Function Fn) const {
    forEachGrain([&Fn](uint64_t Base, NodeId, const CacheLineInfo &Info) {
      Fn(Base, Info);
    });
  }

  /// Number of lines with materialized detail (O(1) counter).
  size_t materializedLines() const { return materializedGrains(); }

  /// Bytes of shadow metadata currently allocated: the flat per-line slab
  /// arrays plus the exact footprint of every materialized CacheLineInfo
  /// (word slots and per-thread stats chunks included), so the memory
  /// ablation reports honest numbers.
  size_t shadowBytes() const { return metadataBytes(); }

  const CacheGeometry &geometry() const { return Geometry; }

private:
  CacheGeometry Geometry;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_SHADOWMEMORY_H
