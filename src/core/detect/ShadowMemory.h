//===- core/detect/ShadowMemory.h - Address-to-line metadata ----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow memory (paper Section 2.2): constant-time mapping from an address
/// to its cache line's metadata via bit shifting, possible because the heap
/// arena and global segment ranges are known up front. Two flat arrays per
/// monitored region, exactly as the paper describes: one per-line write
/// counter, and one per-line pointer to detailed tracking state that is
/// only materialized for lines whose write count crosses the susceptibility
/// threshold.
///
/// The arrays are safe to update from many ingesting threads concurrently
/// with no locking: write counters are per-slab arrays of relaxed atomics,
/// detail pointers are published with a compare-and-swap (losers delete
/// their allocation), and a materialized CacheLineInfo is internally
/// lock-free (single-word CAS table, relaxed atomic counters), so the whole
/// ingestion path is mutex-free. Readers that run after ingestion quiesces
/// (report generation, tests) see fully published state.
///
/// Building with -DCHEETAH_LOCKED_TABLE=ON restores the PR-1 striped line
/// mutexes around detail mutation for A/B benchmarking of the lock-free
/// hot path; the default build contains no mutex here at all.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_SHADOWMEMORY_H
#define CHEETAH_CORE_DETECT_SHADOWMEMORY_H

#include "core/detect/CacheLineInfo.h"
#include "mem/CacheGeometry.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#if CHEETAH_LOCKED_TABLE
#include <array>
#include <mutex>
#endif

namespace cheetah {
namespace core {

/// One contiguous monitored address range (heap arena or global segment).
struct ShadowRegion {
  uint64_t Base = 0;
  uint64_t Size = 0;
};

/// Flat-array shadow metadata over a set of monitored regions.
class ShadowMemory {
public:
  ShadowMemory(const CacheGeometry &Geometry,
               std::vector<ShadowRegion> Regions);
  ~ShadowMemory();

  ShadowMemory(const ShadowMemory &) = delete;
  ShadowMemory &operator=(const ShadowMemory &) = delete;

  /// \returns true if \p Address falls inside a monitored region. Accesses
  /// elsewhere (stack, kernel, libraries) are filtered out (Section 4.1).
  bool covers(uint64_t Address) const;

  /// Atomically increments the write counter of \p Address's line.
  /// \returns the new count. \p Address must be covered.
  uint32_t noteWrite(uint64_t Address);

  /// Current write count of \p Address's line (0 if never written).
  uint32_t writeCount(uint64_t Address) const;

  /// \returns the detailed info for \p Address's line, or nullptr if it was
  /// never materialized. \p Address must be covered.
  CacheLineInfo *detail(uint64_t Address);
  const CacheLineInfo *detail(uint64_t Address) const;

  /// Materializes (if needed) and returns the detailed info for the line.
  /// Safe to race: exactly one allocation wins publication.
  CacheLineInfo &materializeDetail(uint64_t Address);

#if CHEETAH_LOCKED_TABLE
  /// The PR-1 striped lock serializing mutation of \p Address's line detail.
  /// Only exists in the locked A/B build; the default ingestion path is
  /// lock-free and this member is compiled out.
  std::mutex &lineLock(uint64_t Address);
#endif

  /// First byte address of the line containing \p Address.
  uint64_t lineBase(uint64_t Address) const {
    return Geometry.lineBase(Address);
  }

  /// Invokes \p Fn(lineBaseAddress, info) for every materialized line.
  template <typename Function> void forEachDetail(Function Fn) const {
    for (const Slab &Region : Slabs)
      for (size_t I = 0; I < Region.Lines; ++I)
        if (const CacheLineInfo *Info =
                Region.Details[I].load(std::memory_order_acquire))
          Fn(Region.Base + (static_cast<uint64_t>(I) << Geometry.lineShift()),
             *Info);
  }

  /// Number of lines with materialized detail (O(1): maintained as a
  /// counter on publication, not by scanning the slabs).
  size_t materializedLines() const {
    return MaterializedCount.load(std::memory_order_relaxed);
  }

  /// Bytes of shadow metadata currently allocated: the flat per-line slab
  /// arrays plus the exact footprint of every materialized CacheLineInfo
  /// (word slots and per-thread stats chunks included), so the memory
  /// ablation reports honest numbers.
  size_t shadowBytes() const;

  const CacheGeometry &geometry() const { return Geometry; }

private:
  struct Slab {
    uint64_t Base = 0;
    uint64_t Size = 0;
    size_t Lines = 0;
    std::unique_ptr<std::atomic<uint32_t>[]> WriteCounts;     // one per line
    std::unique_ptr<std::atomic<CacheLineInfo *>[]> Details;  // one per line
  };

  const Slab *slabFor(uint64_t Address) const;
  Slab *slabFor(uint64_t Address);
  size_t lineIndexIn(const Slab &Region, uint64_t Address) const;

  CacheGeometry Geometry;
  std::vector<Slab> Slabs;
#if CHEETAH_LOCKED_TABLE
  static constexpr size_t LockStripeCount = 64;
  std::array<std::mutex, LockStripeCount> LockStripes;
#endif
  std::atomic<size_t> MaterializedCount{0};
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_SHADOWMEMORY_H
