//===- core/detect/GrainTable.cpp - Address-to-grain metadata -------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-template pieces of the shard registry: a process-wide id
/// generator (one id per table instance, never reused) and a small
/// per-thread cache mapping table ids to this thread's shard. The cache is
/// a fixed ring — a thread juggling more tables than slots just re-registers
/// a fresh shard after eviction, which the merge handles naturally.
///
//===----------------------------------------------------------------------===//

#include "core/detect/GrainTable.h"

using namespace cheetah;
using namespace cheetah::core;

namespace {

struct ShardCacheEntry {
  uint64_t RegistryId = 0; // 0 = empty (ids start at 1)
  void *Shard = nullptr;
};

constexpr size_t ShardCacheSlots = 8;
thread_local ShardCacheEntry ShardCache[ShardCacheSlots];
thread_local size_t ShardCacheCursor = 0;

} // namespace

uint64_t cheetah::core::detail::nextGrainRegistryId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

void *cheetah::core::detail::cachedShardFor(uint64_t RegistryId) {
  for (const ShardCacheEntry &Entry : ShardCache)
    if (Entry.RegistryId == RegistryId)
      return Entry.Shard;
  return nullptr;
}

void cheetah::core::detail::cacheShard(uint64_t RegistryId, void *Shard) {
  ShardCache[ShardCacheCursor] = {RegistryId, Shard};
  ShardCacheCursor = (ShardCacheCursor + 1) % ShardCacheSlots;
}
