//===- core/detect/BatchDecode.cpp - Vectorized sample decode -------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/BatchDecode.h"

#include "support/Assert.h"
#include "support/CpuFeatures.h"

#if defined(__x86_64__) && !defined(CHEETAH_FORCE_SCALAR)
#define CHEETAH_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#endif

using namespace cheetah;
using namespace cheetah::core;

// The word-bucket computation below shifts by 2 instead of dividing so the
// SIMD and scalar kernels share one shape; it is only correct for the
// paper's fixed 4-byte word granularity.
static_assert(WordSize == 4, "batch decode assumes 4-byte words");

const char *cheetah::core::decodeKernelName(DecodeKernel Kernel) {
  return Kernel == DecodeKernel::Avx2 ? "avx2" : "scalar";
}

BatchDecoder::BatchDecoder(const CacheGeometry &Geometry,
                           std::vector<ShadowRegion> Regions, bool ForceScalar)
    : LineMask(Geometry.lineSize() - 1), Regions(std::move(Regions)),
      Kernel(DecodeKernel::Scalar) {
#if CHEETAH_HAVE_AVX2_KERNEL
  if (!ForceScalar && support::cpuHasAvx2())
    Kernel = DecodeKernel::Avx2;
#else
  (void)ForceScalar;
#endif
}

bool BatchDecoder::simdAvailable() {
#if CHEETAH_HAVE_AVX2_KERNEL
  return support::cpuHasAvx2();
#else
  return false;
#endif
}

void BatchDecoder::decode(const pmu::Sample *Samples, size_t Count,
                          uint8_t AccessBytes, DecodedBatch &Out) const {
  CHEETAH_ASSERT(Count <= DecodedBatch::Capacity,
                 "decode chunk exceeds the batch scratch capacity");
#if CHEETAH_HAVE_AVX2_KERNEL
  if (Kernel == DecodeKernel::Avx2) {
    decodeAvx2(Samples, Count, AccessBytes, Out);
    return;
  }
#endif
  decodeScalar(Samples, 0, Count, AccessBytes, Out);
}

void BatchDecoder::decodeScalar(const pmu::Sample *Samples, size_t Begin,
                                size_t Count, uint8_t AccessBytes,
                                DecodedBatch &Out) const {
  const uint64_t Bytes = AccessBytes ? AccessBytes : 1;
  for (size_t I = Begin; I < Count; ++I) {
    uint64_t Address = Samples[I].Address;
    uint64_t Offset = Address & LineMask;
    uint64_t Word = Offset >> 2;
    // Branchless clamp of the access's last byte to the line end: a
    // straddling access contributes words only within its first line.
    uint64_t LastByte = Offset + Bytes - 1;
    if (LastByte > LineMask)
      LastByte = LineMask;
    Out.Bucket[I] = static_cast<uint32_t>(Word);
    Out.Span[I] = static_cast<uint32_t>((LastByte >> 2) - Word + 1);
    // Unsigned wraparound turns the two-sided range test into one compare
    // per region (kernel/library/stack addresses fail every region).
    uint8_t Covered = 0;
    for (const ShadowRegion &Region : Regions)
      Covered |= static_cast<uint8_t>(Address - Region.Base < Region.Size);
    Out.Covered[I] = Covered;
  }
}

#if CHEETAH_HAVE_AVX2_KERNEL

/// Four samples per step: addresses gathered straight out of the AoS batch
/// (stride sizeof(pmu::Sample)), decoded with the same mask/shift/clamp
/// arithmetic as the scalar kernel so results are bit-identical, and packed
/// down to the 32-bit SoA outputs.
__attribute__((target("avx2"))) void
BatchDecoder::decodeAvx2(const pmu::Sample *Samples, size_t Count,
                         uint8_t AccessBytes, DecodedBatch &Out) const {
  const uint64_t Bytes = AccessBytes ? AccessBytes : 1;
  const __m256i Mask = _mm256_set1_epi64x(static_cast<long long>(LineMask));
  const __m256i BytesM1 = _mm256_set1_epi64x(static_cast<long long>(Bytes - 1));
  const __m256i One = _mm256_set1_epi64x(1);
  const __m256i SignFlip = _mm256_set1_epi64x(
      static_cast<long long>(0x8000'0000'0000'0000ull));
  constexpr long long Stride = sizeof(pmu::Sample);
  const __m256i GatherOffsets =
      _mm256_set_epi64x(3 * Stride, 2 * Stride, 1 * Stride, 0);
  // Lane selector packing the low 32 bits of each 64-bit lane into the
  // lower 128 bits.
  const __m256i PackLow32 = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);

  size_t I = 0;
  for (; I + 4 <= Count; I += 4) {
    const long long *AddressBase =
        reinterpret_cast<const long long *>(&Samples[I].Address);
    __m256i Address =
        _mm256_i64gather_epi64(AddressBase, GatherOffsets, /*scale=*/1);

    __m256i Offset = _mm256_and_si256(Address, Mask);
    __m256i Word = _mm256_srli_epi64(Offset, 2);
    // LastByte = min(Offset + Bytes - 1, LineMask). Both operands are far
    // below 2^63, so the signed compare is exact.
    __m256i LastByte = _mm256_add_epi64(Offset, BytesM1);
    __m256i Straddles = _mm256_cmpgt_epi64(LastByte, Mask);
    LastByte = _mm256_blendv_epi8(LastByte, Mask, Straddles);
    __m256i Span = _mm256_add_epi64(
        _mm256_sub_epi64(_mm256_srli_epi64(LastByte, 2), Word), One);

    // Coverage: unsigned (Address - Base) < Size per region, via the
    // sign-bit flip that turns AVX2's signed 64-bit compare unsigned.
    __m256i Covered = _mm256_setzero_si256();
    for (const ShadowRegion &Region : Regions) {
      __m256i Delta = _mm256_sub_epi64(
          Address, _mm256_set1_epi64x(static_cast<long long>(Region.Base)));
      __m256i InRegion = _mm256_cmpgt_epi64(
          _mm256_xor_si256(
              _mm256_set1_epi64x(static_cast<long long>(Region.Size)),
              SignFlip),
          _mm256_xor_si256(Delta, SignFlip));
      Covered = _mm256_or_si256(Covered, InRegion);
    }

    _mm_storeu_si128(
        reinterpret_cast<__m128i *>(&Out.Bucket[I]),
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(Word, PackLow32)));
    _mm_storeu_si128(
        reinterpret_cast<__m128i *>(&Out.Span[I]),
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(Span, PackLow32)));
    int CoveredLanes = _mm256_movemask_pd(_mm256_castsi256_pd(Covered));
    Out.Covered[I + 0] = static_cast<uint8_t>(CoveredLanes & 1);
    Out.Covered[I + 1] = static_cast<uint8_t>((CoveredLanes >> 1) & 1);
    Out.Covered[I + 2] = static_cast<uint8_t>((CoveredLanes >> 2) & 1);
    Out.Covered[I + 3] = static_cast<uint8_t>((CoveredLanes >> 3) & 1);
  }
  decodeScalar(Samples, I, Count, AccessBytes, Out);
}

#endif // CHEETAH_HAVE_AVX2_KERNEL
