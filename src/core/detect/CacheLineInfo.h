//===- core/detect/CacheLineInfo.h - Per-line detailed tracking -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detailed per-cache-line state, allocated lazily for "susceptible" lines
/// only (those with more than a threshold of sampled writes — the paper's
/// filter that avoids tracking write-once memory). Holds the two-entry
/// invalidation table, per-word access tracking for true/false-sharing
/// differentiation and padding guidance, and per-thread access/cycle
/// accumulators that feed the assessment equations.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_CACHELINEINFO_H
#define CHEETAH_CORE_DETECT_CACHELINEINFO_H

#include "core/detect/CacheLineTable.h"
#include "mem/CacheGeometry.h"
#include "mem/MemoryAccess.h"

#include <cstdint>
#include <vector>

namespace cheetah {
namespace core {

/// Sentinel for "no thread recorded yet" in WordStats.
inline constexpr ThreadId NoThread = ~static_cast<ThreadId>(0);

/// Per 4-byte-word access statistics (paper Section 2.4: "the amount of
/// reads or writes issued by a particular thread on each word").
struct WordStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  /// First thread seen touching this word.
  ThreadId FirstThread = NoThread;
  /// Set once a second distinct thread touches the word: the word is truly
  /// shared (true sharing indicator).
  bool MultiThread = false;

  uint64_t accesses() const { return Reads + Writes; }

  /// Accumulates one access by \p Tid.
  void record(ThreadId Tid, AccessKind Kind, uint64_t LatencyCycles) {
    if (Kind == AccessKind::Read)
      ++Reads;
    else
      ++Writes;
    Cycles += LatencyCycles;
    if (FirstThread == NoThread)
      FirstThread = Tid;
    else if (FirstThread != Tid)
      MultiThread = true;
  }
};

/// Per-thread access/cycle accumulator on one line (and, aggregated, on one
/// object) — the Accesses_O and Cycles_O of the assessment equations,
/// broken down per thread for EQ.2.
struct ThreadLineStats {
  ThreadId Tid = 0;
  uint64_t Accesses = 0;
  uint64_t Cycles = 0;
};

/// Everything Cheetah tracks about one susceptible cache line.
class CacheLineInfo {
public:
  explicit CacheLineInfo(uint64_t WordsPerLine) : Words(WordsPerLine) {}

  /// Records one sampled access landing on this line.
  /// \returns true if it incurred a cache invalidation.
  bool recordAccess(ThreadId Tid, AccessKind Kind, uint64_t WordIndex,
                    uint64_t WordSpan, uint64_t LatencyCycles);

  /// Cache-invalidation count (the significance signal).
  uint64_t invalidations() const { return Invalidations; }

  /// Total sampled accesses / writes / cycles on the line.
  uint64_t accesses() const { return Accesses; }
  uint64_t writes() const { return Writes; }
  uint64_t cycles() const { return Cycles; }

  /// Per-word statistics.
  const std::vector<WordStats> &words() const { return Words; }

  /// Per-thread accumulators, ordered by thread id.
  const std::vector<ThreadLineStats> &threads() const { return Threads; }

  /// Number of distinct threads that accessed the line.
  size_t threadCount() const { return Threads.size(); }

  /// Access to the invalidation table (tests).
  const CacheLineTable &table() const { return Table; }

private:
  ThreadLineStats &threadStats(ThreadId Tid);

  CacheLineTable Table;
  uint64_t Invalidations = 0;
  uint64_t Accesses = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  std::vector<WordStats> Words;
  std::vector<ThreadLineStats> Threads; // sorted by Tid, expected tiny
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_CACHELINEINFO_H
