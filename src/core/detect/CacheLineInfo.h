//===- core/detect/CacheLineInfo.h - Per-line detailed tracking -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detailed per-cache-line state, allocated lazily for "susceptible" lines
/// only (those with more than a threshold of sampled writes — the paper's
/// filter that avoids tracking write-once memory). A thin instantiation of
/// the granularity-generic GrainInfo: the actors are threads, the buckets
/// are the line's 4-byte words, and there are no per-grain extras. See
/// GrainInfo.h for the machinery (two-entry invalidation table, per-bucket
/// histogram, per-thread EQ.2 accumulators, shard records).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_CACHELINEINFO_H
#define CHEETAH_CORE_DETECT_CACHELINEINFO_H

#include "core/detect/GrainInfo.h"

namespace cheetah {
namespace core {

/// Everything Cheetah tracks about one susceptible cache line.
class CacheLineInfo : public GrainInfo<LineGrainTraits> {
public:
  explicit CacheLineInfo(uint64_t WordsPerLine)
      : GrainInfo(WordsPerLine) {}

  /// Records one sampled access landing on this line. Lock-free:
  /// concurrent calls from many ingesting threads never lose an update.
  /// \returns true if it incurred a cache invalidation.
  bool recordAccess(ThreadId Tid, AccessKind Kind, uint64_t WordIndex,
                    uint64_t WordSpan, uint64_t LatencyCycles) {
    return record(Tid, Tid, Kind, WordIndex, WordSpan, LatencyCycles);
  }

  /// Value snapshot of the per-word statistics, one entry per word of the
  /// line (consistent once ingestion quiesces).
  std::vector<WordStats> words() const { return buckets(); }
};

// The empty line extras must overlay completely ([[no_unique_address]]) so
// the line record is exactly as wide as the pre-generalization layout —
// the shadow-bytes accounting embedded in the report goldens depends on
// this staying put.
static_assert(sizeof(CacheLineInfo) ==
                  sizeof(CacheLineTable) + 4 * sizeof(std::atomic<uint64_t>) +
                      sizeof(std::unique_ptr<AtomicBucketStats[]>) +
                      sizeof(uint64_t) + sizeof(ThreadStatsChain),
              "empty line extras must not widen the grain record");

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_CACHELINEINFO_H
