//===- core/detect/CacheLineInfo.h - Per-line detailed tracking -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detailed per-cache-line state, allocated lazily for "susceptible" lines
/// only (those with more than a threshold of sampled writes — the paper's
/// filter that avoids tracking write-once memory). Holds the two-entry
/// invalidation table, per-word access tracking for true/false-sharing
/// differentiation and padding guidance, and per-thread access/cycle
/// accumulators that feed the assessment equations.
///
/// Every mutable field is an atomic updated with relaxed operations (the
/// two-entry table is a single-word CAS state machine, the per-thread
/// accumulators live in a lock-free chunk chain), so recordAccess is safe
/// from any number of ingesting threads with no lock at all. Readers that
/// run after ingestion quiesces — report generation, tests — take plain
/// value snapshots via words()/threads().
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_CACHELINEINFO_H
#define CHEETAH_CORE_DETECT_CACHELINEINFO_H

#include "core/detect/CacheLineTable.h"
#include "mem/CacheGeometry.h"
#include "mem/MemoryAccess.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cheetah {
namespace core {

/// Sentinel for "no thread recorded yet" in WordStats.
inline constexpr ThreadId NoThread = ~static_cast<ThreadId>(0);

/// Snapshot of per 4-byte-word access statistics (paper Section 2.4: "the
/// amount of reads or writes issued by a particular thread on each word").
struct WordStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  /// First thread seen touching this word.
  ThreadId FirstThread = NoThread;
  /// Set once a second distinct thread touches the word: the word is truly
  /// shared (true sharing indicator).
  bool MultiThread = false;

  uint64_t accesses() const { return Reads + Writes; }
};

/// Per-thread access/cycle accumulator on one line (and, aggregated, on one
/// object) — the Accesses_O and Cycles_O of the assessment equations,
/// broken down per thread for EQ.2.
struct ThreadLineStats {
  ThreadId Tid = 0;
  uint64_t Accesses = 0;
  uint64_t Cycles = 0;
};

/// Lock-free per-thread access/cycle accumulator chain, shared by the
/// line-granularity (CacheLineInfo) and page-granularity (PageInfo) detail
/// records — both need the per-thread Accesses_O / Cycles_O breakdown that
/// feeds EQ.2. Slots are claimed by CASing a tid into a fixed-capacity
/// block; the chain grows by CAS-publishing the next block, so the thread
/// population is unbounded while the common case (a handful of threads)
/// stays in the inline first block with no indirection.
class ThreadStatsChain {
public:
  ThreadStatsChain() = default;
  ~ThreadStatsChain();

  ThreadStatsChain(const ThreadStatsChain &) = delete;
  ThreadStatsChain &operator=(const ThreadStatsChain &) = delete;

  /// Finds (or claims) \p Tid's slot and accumulates one access. Lock-free;
  /// safe from any number of ingesting threads.
  void record(ThreadId Tid, uint64_t LatencyCycles);

  /// Value snapshot of every claimed slot, ordered by thread id.
  std::vector<ThreadLineStats> snapshot() const;

  /// Number of distinct threads recorded.
  size_t distinctThreads() const;

  /// Heap bytes behind overflow blocks (the first block is inline in the
  /// owning object, whose sizeof already covers it).
  size_t overflowBytes() const;

private:
  /// One fixed-capacity block of the chain.
  struct Chunk {
    static constexpr size_t Capacity = 8;
    std::atomic<ThreadId> Tids[Capacity];
    std::atomic<uint64_t> Accesses[Capacity];
    std::atomic<uint64_t> Cycles[Capacity];
    std::atomic<Chunk *> Next{nullptr};

    Chunk();
  };

  Chunk First;
};

/// Everything Cheetah tracks about one susceptible cache line.
class CacheLineInfo {
public:
  explicit CacheLineInfo(uint64_t WordsPerLine);
  ~CacheLineInfo();

  CacheLineInfo(const CacheLineInfo &) = delete;
  CacheLineInfo &operator=(const CacheLineInfo &) = delete;

  /// Records one sampled access landing on this line. Lock-free:
  /// concurrent calls from many ingesting threads never lose an update.
  /// \returns true if it incurred a cache invalidation.
  bool recordAccess(ThreadId Tid, AccessKind Kind, uint64_t WordIndex,
                    uint64_t WordSpan, uint64_t LatencyCycles);

  /// Cache-invalidation count (the significance signal).
  uint64_t invalidations() const {
    return Invalidations.load(std::memory_order_relaxed);
  }

  /// Total sampled accesses / writes / cycles on the line.
  uint64_t accesses() const {
    return Accesses.load(std::memory_order_relaxed);
  }
  uint64_t writes() const { return Writes.load(std::memory_order_relaxed); }
  uint64_t cycles() const { return Cycles.load(std::memory_order_relaxed); }

  /// Value snapshot of the per-word statistics, one entry per word of the
  /// line (consistent once ingestion quiesces).
  std::vector<WordStats> words() const;

  /// Value snapshot of the per-thread accumulators, ordered by thread id.
  std::vector<ThreadLineStats> threads() const;

  /// Number of distinct threads that accessed the line.
  size_t threadCount() const;

  /// Access to the invalidation table (tests).
  const CacheLineTable &table() const { return Table; }

  /// Exact bytes of heap memory behind this line's detailed tracking
  /// (object, word slots, and every per-thread stats chunk) — feeds the
  /// memory ablation's honest accounting.
  size_t footprintBytes() const;

private:
  /// Atomic backing store for one word's statistics.
  struct AtomicWordStats {
    std::atomic<uint64_t> Reads{0};
    std::atomic<uint64_t> Writes{0};
    std::atomic<uint64_t> Cycles{0};
    std::atomic<ThreadId> FirstThread{NoThread};
    std::atomic<bool> MultiThread{false};

    void record(ThreadId Tid, AccessKind Kind, uint64_t LatencyCycles);
    WordStats snapshot() const;
  };

  CacheLineTable Table;
  std::atomic<uint64_t> Invalidations{0};
  std::atomic<uint64_t> Accesses{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> Cycles{0};
  std::unique_ptr<AtomicWordStats[]> Words;
  uint64_t WordCount;
  ThreadStatsChain ThreadStats;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_CACHELINEINFO_H
