//===- core/detect/BatchDecode.h - Vectorized sample decode -----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-parallel front of the batched ingestion pipeline: turns a batch
/// of pmu::Sample records into struct-of-arrays decoded line coordinates —
/// per sample a monitored-region coverage flag, the 4-byte word bucket, and
/// the word span with branchless end-of-line clamping for line-straddling
/// accesses. Decoding is pure integer arithmetic over the sample addresses,
/// so it vectorizes: a runtime-dispatched AVX2 kernel processes four
/// samples per step (gathered straight out of the AoS batch), with a
/// bit-identical scalar fallback for other CPUs. Building with
/// -DCHEETAH_FORCE_SCALAR=ON compiles the AVX2 kernel out entirely, which
/// makes kernel equivalence an executable gate: the forced-scalar build
/// must reproduce every golden report byte for byte.
///
/// The decoded arrays feed Detector::handleBatch's later stages: the
/// coverage flags gate the stage-1 write-count sweep, and bucket/span are
/// consumed only by samples that survive the susceptibility filter.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_BATCHDECODE_H
#define CHEETAH_CORE_DETECT_BATCHDECODE_H

#include "core/detect/GrainTable.h"
#include "mem/CacheGeometry.h"
#include "pmu/Sample.h"

#include <cstdint>
#include <vector>

namespace cheetah {
namespace core {

/// Which decode kernel a BatchDecoder dispatches to. Selected once at
/// construction; never per batch.
enum class DecodeKernel { Scalar, Avx2 };

/// \returns the kernel's stable display name ("scalar" / "avx2").
const char *decodeKernelName(DecodeKernel Kernel);

/// Struct-of-arrays decoded records for one sample chunk. Fixed capacity so
/// the scratch lives in per-thread storage with zero per-batch allocation;
/// callers chunk larger batches.
struct DecodedBatch {
  static constexpr size_t Capacity = 256;

  /// 1 if the sample address falls inside a monitored region, else 0.
  uint8_t Covered[Capacity];
  /// Index of the access's first 4-byte word within its cache line.
  uint32_t Bucket[Capacity];
  /// Number of words the access covers, clamped at the line end (a
  /// straddling access marks words only to the end of its first line,
  /// exactly like the per-sample decode).
  uint32_t Span[Capacity];
};

/// Decodes sample batches over one line geometry and one set of monitored
/// regions. Construction picks the widest kernel the CPU supports (unless
/// \p ForceScalar or the CHEETAH_FORCE_SCALAR build); decode() then
/// dispatches with no per-call probing.
class BatchDecoder {
public:
  BatchDecoder(const CacheGeometry &Geometry,
               std::vector<ShadowRegion> Regions, bool ForceScalar = false);

  /// \returns true if the AVX2 kernel is compiled in and this CPU runs it.
  static bool simdAvailable();

  /// The kernel decode() dispatches to.
  DecodeKernel kernel() const { return Kernel; }

  /// Decodes \p Count samples (at most DecodedBatch::Capacity) into \p Out.
  /// \p AccessBytes is the access width shared by the batch; 0 is treated
  /// as a 1-byte access, matching the per-sample decode.
  void decode(const pmu::Sample *Samples, size_t Count, uint8_t AccessBytes,
              DecodedBatch &Out) const;

private:
  void decodeScalar(const pmu::Sample *Samples, size_t Begin, size_t Count,
                    uint8_t AccessBytes, DecodedBatch &Out) const;
#if defined(__x86_64__) && !defined(CHEETAH_FORCE_SCALAR)
  void decodeAvx2(const pmu::Sample *Samples, size_t Count,
                  uint8_t AccessBytes, DecodedBatch &Out) const;
#endif

  /// lineSize() - 1: both the offset-in-line mask and the last valid byte
  /// offset the straddling clamp saturates to.
  uint64_t LineMask;
  std::vector<ShadowRegion> Regions;
  DecodeKernel Kernel;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_BATCHDECODE_H
