//===- core/detect/SharingClassifier.h - FS vs TS classification -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differentiates false sharing from true sharing using the per-word access
/// information (paper Section 2.4): in true sharing multiple threads access
/// the *same* words, in false sharing they access logically independent
/// words of the same line. The classifier scores each line by the fraction
/// of accesses landing on multi-thread words.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_SHARINGCLASSIFIER_H
#define CHEETAH_CORE_DETECT_SHARINGCLASSIFIER_H

#include "core/detect/CacheLineInfo.h"

#include <cstdint>
#include <vector>

namespace cheetah {
namespace core {

/// The sharing verdict for one line (or one object, by aggregation).
enum class SharingKind : uint8_t {
  /// Fewer than two threads observed: no sharing at all.
  NotShared,
  /// Threads access disjoint words: the fixable case.
  FalseSharing,
  /// Threads access the same words: unavoidable communication.
  TrueSharing,
  /// Both patterns present on the same line.
  Mixed,
};

/// \returns a stable display name for \p Kind.
const char *sharingKindName(SharingKind Kind);

/// Classification thresholds.
struct ClassifierConfig {
  /// A line is false sharing when at most this fraction of its accesses
  /// land on words touched by multiple threads.
  double FalseSharingMaxSharedFraction = 0.3;
  /// A line is true sharing when at least this fraction of its accesses
  /// land on multi-thread words.
  double TrueSharingMinSharedFraction = 0.7;
};

/// Per-line classification result with its evidence.
struct LineClassification {
  SharingKind Kind = SharingKind::NotShared;
  /// Accesses to words touched by >= 2 threads.
  uint64_t SharedWordAccesses = 0;
  /// Accesses to single-thread words.
  uint64_t PrivateWordAccesses = 0;
  /// Distinct threads on the line.
  uint32_t Threads = 0;

  double sharedFraction() const {
    uint64_t Total = SharedWordAccesses + PrivateWordAccesses;
    return Total ? static_cast<double>(SharedWordAccesses) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Stateless classifier over CacheLineInfo.
class SharingClassifier {
public:
  explicit SharingClassifier(const ClassifierConfig &Config = {})
      : Config(Config) {}

  /// Classifies one line from its word-level evidence.
  LineClassification classify(const CacheLineInfo &Info) const;

  /// Same, over an already-taken words() snapshot — callers that need the
  /// snapshot for other work too (the report builder) avoid materializing
  /// it twice. \p ThreadsOnLine is the line's distinct-thread count.
  LineClassification classify(const std::vector<WordStats> &Words,
                              uint32_t ThreadsOnLine) const;

private:
  ClassifierConfig Config;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_SHARINGCLASSIFIER_H
