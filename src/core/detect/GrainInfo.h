//===- core/detect/GrainInfo.h - Granularity-generic grain record -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The granularity-parameterized heart of the detector: one detailed
/// tracking record (`GrainInfo<Traits>`) instantiated per *grain* — a cache
/// line at line granularity, a page at page granularity. The paper's
/// machinery is identical at every level of the memory hierarchy; only the
/// parameters change, and a `GrainTraits` policy carries exactly those:
///
///  - the **actor** whose interleaving drives the two-entry invalidation
///    table (threads for cache false sharing, NUMA nodes for remote-DRAM
///    page sharing),
///  - the **bucket** histogram subdividing the grain (4-byte words of a
///    line, cache lines of a page) that lets SharingClassifier split true
///    from false sharing,
///  - per-grain **extras** beyond the shared counters (the page grain adds
///    remote-traffic totals, per-node accumulators, and remoteByDistance
///    buckets; the line grain adds nothing).
///
/// Every mutable field is a relaxed atomic and the table transition is a
/// single-word CAS, so `record` is lock-free from any number of ingesting
/// threads. Readers that run after ingestion quiesces (report generation,
/// tests) take plain value snapshots.
///
/// Each grain additionally knows how to accumulate into and merge from a
/// per-thread **shard record** (`GrainShardRecord<Traits>`): plain,
/// single-writer fields a thread fills without any cross-thread CAS
/// traffic, folded back into the shared atomics at epoch quiesce. Only the
/// additive statistics shard; the two-entry table stays shared because the
/// invalidation decision depends on the global interleaving of actors,
/// which is also what makes the merge *provable* — merged totals must
/// conserve against the shared-table counters. The shard machinery is
/// always compiled; `CHEETAH_SHARDED_TABLE` only switches the detector's
/// ingestion dispatch onto it.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_GRAININFO_H
#define CHEETAH_CORE_DETECT_GRAININFO_H

#include "core/detect/CacheLineTable.h"
#include "mem/CacheGeometry.h"
#include "mem/MemoryAccess.h"
#include "mem/NumaTopology.h"
#include "support/Assert.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cheetah {
namespace core {

/// Sentinel for "no thread recorded yet" in WordStats.
inline constexpr ThreadId NoThread = ~static_cast<ThreadId>(0);

/// Sentinel for "no actor recorded yet" in a histogram bucket. ThreadId and
/// NodeId are both uint32_t, so one sentinel serves every grain (it equals
/// NoThread and NoNode bit-for-bit).
inline constexpr uint32_t NoActor = ~static_cast<uint32_t>(0);

/// Snapshot of one histogram bucket (paper Section 2.4: "the amount of
/// reads or writes issued by a particular thread on each word"). At line
/// granularity a bucket is a 4-byte word and the actor fields hold thread
/// ids; at page granularity a bucket is a cache line and they hold node
/// ids — SharingClassifier consumes both unchanged.
struct WordStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  /// First actor (thread/node) seen touching this bucket.
  ThreadId FirstThread = NoThread;
  /// Set once a second distinct actor touches the bucket: the bucket is
  /// truly shared (true sharing indicator).
  bool MultiThread = false;

  uint64_t accesses() const { return Reads + Writes; }
};

/// Per-thread access/cycle accumulator on one grain (and, aggregated, on
/// one object) — the Accesses_O and Cycles_O of the assessment equations,
/// broken down per thread for EQ.2.
struct ThreadLineStats {
  ThreadId Tid = 0;
  uint64_t Accesses = 0;
  uint64_t Cycles = 0;
};

/// Per-node access/cycle accumulator on one page.
struct NodePageStats {
  NodeId Node = 0;
  uint64_t Accesses = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
};

/// Lock-free per-thread access/cycle accumulator chain shared by every
/// grain — all of them need the per-thread Accesses_O / Cycles_O breakdown
/// that feeds EQ.2. Slots are claimed by CASing a tid into a
/// fixed-capacity block; the chain grows by CAS-publishing the next block,
/// so the thread population is unbounded while the common case (a handful
/// of threads) stays in the inline first block with no indirection.
class ThreadStatsChain {
public:
  ThreadStatsChain() = default;
  ~ThreadStatsChain();

  ThreadStatsChain(const ThreadStatsChain &) = delete;
  ThreadStatsChain &operator=(const ThreadStatsChain &) = delete;

  /// Finds (or claims) \p Tid's slot and accumulates one access. Lock-free;
  /// safe from any number of ingesting threads.
  void record(ThreadId Tid, uint64_t LatencyCycles) {
    add(Tid, 1, LatencyCycles);
  }

  /// Bulk variant: accumulates \p Accesses accesses and \p Cycles cycles in
  /// one claim — how a merged shard folds its per-thread totals back in.
  void add(ThreadId Tid, uint64_t Accesses, uint64_t Cycles);

  /// Value snapshot of every claimed slot, ordered by thread id.
  std::vector<ThreadLineStats> snapshot() const;

  /// Number of distinct threads recorded.
  size_t distinctThreads() const;

  /// Heap bytes behind overflow blocks (the first block is inline in the
  /// owning object, whose sizeof already covers it).
  size_t overflowBytes() const;

private:
  /// One fixed-capacity block of the chain.
  struct Chunk {
    static constexpr size_t Capacity = 8;
    std::atomic<ThreadId> Tids[Capacity];
    std::atomic<uint64_t> Accesses[Capacity];
    std::atomic<uint64_t> Cycles[Capacity];
    std::atomic<Chunk *> Next{nullptr};

    Chunk();
  };

  Chunk First;
};

/// One bucket's single-writer accumulation inside a shard: the plain-field
/// mirror of AtomicBucketStats. FirstActor/MultiActor are tracked per
/// shard and reconciled at merge (first merged shard to publish wins,
/// disagreement marks the bucket multi-actor).
struct ShardBucketStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  uint32_t FirstActor = NoActor;
  bool MultiActor = false;

  void record(uint32_t Actor, AccessKind Kind, uint64_t LatencyCycles) {
    if (Kind == AccessKind::Read)
      ++Reads;
    else
      ++Writes;
    Cycles += LatencyCycles;
    if (FirstActor == NoActor)
      FirstActor = Actor;
    else if (FirstActor != Actor)
      MultiActor = true;
  }
};

/// Atomic backing store for one histogram bucket (per-word at line
/// granularity with thread actors, per-line at page granularity with node
/// actors).
struct AtomicBucketStats {
  std::atomic<uint64_t> Reads{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> Cycles{0};
  std::atomic<uint32_t> FirstActor{NoActor};
  std::atomic<bool> MultiActor{false};

  void record(uint32_t Actor, AccessKind Kind, uint64_t LatencyCycles);
  void merge(const ShardBucketStats &Bucket);
  WordStats snapshot() const;
};

/// Granularity-neutral value snapshot of one materialized grain — the
/// common finding source both report builders consume (line findings read
/// per-word buckets, page findings per-line buckets; neither needs to know
/// which grain produced it).
struct GrainSnapshot {
  uint64_t Base = 0;
  uint64_t Accesses = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  uint64_t Invalidations = 0;
  std::vector<WordStats> Buckets;
  std::vector<ThreadLineStats> Threads;
};

/// Per-sample context beyond the generic fields: the line grain needs none.
struct LineAccessContext {};

/// Per-sample context the page grain carries: whether the access crossed
/// nodes, and which node-pair distance it crossed (0 for local).
struct PageAccessContext {
  bool Remote = false;
  uint32_t Distance = 0;
};

/// Line-grain shard extras: nothing beyond the generic shard fields.
struct LineShardExtras {
  void record(uint32_t, AccessKind, uint64_t, const LineAccessContext &) {}
  uint64_t remoteAccesses() const { return 0; }
  size_t heapBytes() const { return 0; }
};

/// Line-grain per-grain extras: empty (overlaid via [[no_unique_address]]
/// so the line record stays exactly as wide as before the generalization —
/// the shadow-bytes accounting the goldens embed depends on it).
struct LineGrainExtras {
  void record(uint32_t, AccessKind, uint64_t, const LineAccessContext &) {}
  void merge(const LineShardExtras &) {}
  uint64_t remoteAccesses() const { return 0; }
};

/// Page-grain shard extras: single-writer mirrors of the remote-traffic
/// totals, per-node accumulators, and distance buckets.
struct PageShardExtras {
  uint64_t RemoteAccesses = 0;
  uint64_t RemoteCycles = 0;
  uint64_t NodeAccesses[NumaTopology::MaxNodes] = {};
  uint64_t NodeWrites[NumaTopology::MaxNodes] = {};
  uint64_t NodeCycles[NumaTopology::MaxNodes] = {};
  /// Remote traffic per crossed distance, in arrival order (at most
  /// MaxNodes - 1 distinct distances exist under a settled home).
  std::vector<RemoteDistanceStats> Remote;

  void record(NodeId Node, AccessKind Kind, uint64_t LatencyCycles,
              const PageAccessContext &Ctx);
  uint64_t remoteAccesses() const { return RemoteAccesses; }
  size_t heapBytes() const {
    return Remote.capacity() * sizeof(RemoteDistanceStats);
  }
};

/// Page-grain per-grain extras: everything the NUMA story needs beyond the
/// generic counters. Node populations are tiny (NumaTopology::MaxNodes) so
/// they live in fixed arrays rather than the chunk chain.
struct PageGrainExtras {
  /// One lock-free distance bucket: claimed by CAS-publishing its distance
  /// value (0 = empty; validated remote distances are >= 1). A page's home
  /// is settled at first touch, so at most MaxNodes - 1 distinct distances
  /// ever occur and the fixed array never fills.
  struct AtomicDistanceStats {
    std::atomic<uint32_t> Distance{0};
    std::atomic<uint64_t> Accesses{0};
    std::atomic<uint64_t> Cycles{0};
  };

  std::atomic<uint64_t> RemoteAccesses{0};
  std::atomic<uint64_t> RemoteCycles{0};
  /// Fixed per-node accumulators; node ids are bounded by
  /// NumaTopology::MaxNodes.
  std::atomic<uint64_t> NodeAccesses[NumaTopology::MaxNodes];
  std::atomic<uint64_t> NodeWrites[NumaTopology::MaxNodes];
  std::atomic<uint64_t> NodeCycles[NumaTopology::MaxNodes];
  /// Remote traffic bucketed by crossed node-pair distance.
  AtomicDistanceStats DistanceSlots[NumaTopology::MaxNodes];

  PageGrainExtras();

  void record(NodeId Node, AccessKind Kind, uint64_t LatencyCycles,
              const PageAccessContext &Ctx);
  void merge(const PageShardExtras &Shard);

  uint64_t remoteAccesses() const {
    return RemoteAccesses.load(std::memory_order_relaxed);
  }
  uint64_t remoteCycles() const {
    return RemoteCycles.load(std::memory_order_relaxed);
  }
  std::vector<NodePageStats> nodes() const;
  std::vector<RemoteDistanceStats> remoteByDistance() const;
  size_t nodeCount() const;

private:
  /// Adds remote samples to their distance bucket (lock-free).
  void bucketRemote(uint32_t Distance, uint64_t Accesses, uint64_t Cycles);
};

/// The line grain: threads invalidate each other's cache lines; buckets
/// are the line's 4-byte words.
struct LineGrainTraits {
  using ActorId = ThreadId;
  using Context = LineAccessContext;
  using Extras = LineGrainExtras;
  using ShardExtras = LineShardExtras;
  static constexpr const char *Name = "line";
  static constexpr const char *BucketRangeMsg = "word index outside line";
  static constexpr const char *SpanMsg = "access must cover at least one word";
};

/// The page grain: NUMA nodes invalidate each other's pages; buckets are
/// the page's cache lines.
struct PageGrainTraits {
  using ActorId = NodeId;
  using Context = PageAccessContext;
  using Extras = PageGrainExtras;
  using ShardExtras = PageShardExtras;
  static constexpr const char *Name = "page";
  static constexpr const char *BucketRangeMsg = "line index outside page";
  static constexpr const char *SpanMsg = "access must cover at least one line";
};

/// One grain's single-writer accumulation inside a per-thread shard: plain
/// fields only, keyed by grain base address in the owning shard's map.
/// Buckets are sized lazily on first touch so untouched grains cost one
/// map node, not a full histogram.
template <typename Traits> struct GrainShardRecord {
  uint64_t Accesses = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
  uint64_t Invalidations = 0;
  std::vector<ShardBucketStats> Buckets;
  /// Sorted by tid; thread populations per grain are tiny.
  std::vector<ThreadLineStats> Threads;
  [[no_unique_address]] typename Traits::ShardExtras Extras;
};

/// Everything Cheetah tracks about one susceptible grain, parameterized by
/// the grain policy. CacheLineInfo and PageInfo are thin instantiations.
template <typename Traits> class GrainInfo {
public:
  using ActorId = typename Traits::ActorId;
  using Context = typename Traits::Context;
  using ShardRecord = GrainShardRecord<Traits>;

  explicit GrainInfo(uint64_t BucketsPerGrain)
      : Buckets(std::make_unique<AtomicBucketStats[]>(BucketsPerGrain)),
        BucketCount(BucketsPerGrain) {}

  GrainInfo(const GrainInfo &) = delete;
  GrainInfo &operator=(const GrainInfo &) = delete;

  /// Records one sampled access landing on this grain into the shared
  /// atomics. Lock-free: concurrent calls from many ingesting threads
  /// never lose an update. \returns true if it incurred an invalidation.
  bool record(ThreadId Tid, ActorId Actor, AccessKind Kind,
              uint64_t BucketIndex, uint64_t BucketSpan,
              uint64_t LatencyCycles, const Context &Ctx = {}) {
    CHEETAH_ASSERT(BucketIndex < BucketCount, Traits::BucketRangeMsg);
    CHEETAH_ASSERT(BucketSpan >= 1, Traits::SpanMsg);

    bool Invalidation = Table.recordAccess(Actor, Kind);
    if (Invalidation)
      Invalidations.fetch_add(1, std::memory_order_relaxed);

    Accesses.fetch_add(1, std::memory_order_relaxed);
    if (Kind == AccessKind::Write)
      Writes.fetch_add(1, std::memory_order_relaxed);
    Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
    ExtraStats.record(Actor, Kind, LatencyCycles, Ctx);

    // An access wider than a bucket (e.g. a 64-bit store over 4-byte
    // words) marks every covered bucket; latency attributes to the first
    // bucket to avoid double counting.
    uint64_t End = std::min<uint64_t>(BucketIndex + BucketSpan, BucketCount);
    for (uint64_t B = BucketIndex; B < End; ++B)
      Buckets[B].record(Actor, Kind, B == BucketIndex ? LatencyCycles : 0);

    ThreadStats.record(Tid, LatencyCycles);
    return Invalidation;
  }

  /// Sharded-mode record: the invalidation decision still goes through the
  /// shared two-entry table (it depends on the global actor interleaving,
  /// which no per-thread shard can see alone), but every additive
  /// statistic lands in \p Record — plain fields only this thread writes,
  /// with no cross-thread CAS traffic. Fold back with mergeShard at epoch
  /// quiesce.
  bool recordShard(ShardRecord &Record, ThreadId Tid, ActorId Actor,
                   AccessKind Kind, uint64_t BucketIndex, uint64_t BucketSpan,
                   uint64_t LatencyCycles, const Context &Ctx = {}) {
    CHEETAH_ASSERT(BucketIndex < BucketCount, Traits::BucketRangeMsg);
    CHEETAH_ASSERT(BucketSpan >= 1, Traits::SpanMsg);

    bool Invalidation = Table.recordAccess(Actor, Kind);
    if (Invalidation)
      ++Record.Invalidations;

    ++Record.Accesses;
    if (Kind == AccessKind::Write)
      ++Record.Writes;
    Record.Cycles += LatencyCycles;
    Record.Extras.record(Actor, Kind, LatencyCycles, Ctx);

    if (Record.Buckets.empty())
      Record.Buckets.resize(BucketCount);
    uint64_t End = std::min<uint64_t>(BucketIndex + BucketSpan, BucketCount);
    for (uint64_t B = BucketIndex; B < End; ++B)
      Record.Buckets[B].record(Actor, Kind, B == BucketIndex ? LatencyCycles : 0);

    auto It = std::lower_bound(
        Record.Threads.begin(), Record.Threads.end(), Tid,
        [](const ThreadLineStats &Slot, ThreadId T) { return Slot.Tid < T; });
    if (It == Record.Threads.end() || It->Tid != Tid)
      It = Record.Threads.insert(It, ThreadLineStats{Tid, 0, 0});
    It->Accesses += 1;
    It->Cycles += LatencyCycles;
    return Invalidation;
  }

  /// Folds one shard's accumulation back into the shared atomics. Callers
  /// serialize merges against ingestion (epoch quiesce); merging itself may
  /// race other readers safely since every target is atomic.
  void mergeShard(const ShardRecord &Record) {
    CHEETAH_ASSERT(Record.Buckets.empty() ||
                       Record.Buckets.size() == BucketCount,
                   "shard bucket count does not match the grain");
    Invalidations.fetch_add(Record.Invalidations, std::memory_order_relaxed);
    Accesses.fetch_add(Record.Accesses, std::memory_order_relaxed);
    Writes.fetch_add(Record.Writes, std::memory_order_relaxed);
    Cycles.fetch_add(Record.Cycles, std::memory_order_relaxed);
    ExtraStats.merge(Record.Extras);
    for (size_t B = 0; B < Record.Buckets.size(); ++B)
      Buckets[B].merge(Record.Buckets[B]);
    for (const ThreadLineStats &Thread : Record.Threads)
      ThreadStats.add(Thread.Tid, Thread.Accesses, Thread.Cycles);
  }

  /// Invalidation count (the significance signal).
  uint64_t invalidations() const {
    return Invalidations.load(std::memory_order_relaxed);
  }

  /// Total sampled accesses / writes / cycles on the grain.
  uint64_t accesses() const {
    return Accesses.load(std::memory_order_relaxed);
  }
  uint64_t writes() const { return Writes.load(std::memory_order_relaxed); }
  uint64_t cycles() const { return Cycles.load(std::memory_order_relaxed); }

  /// Value snapshot of the per-bucket statistics, one entry per bucket of
  /// the grain (consistent once ingestion quiesces).
  std::vector<WordStats> buckets() const {
    std::vector<WordStats> Result;
    Result.reserve(BucketCount);
    for (uint64_t B = 0; B < BucketCount; ++B)
      Result.push_back(Buckets[B].snapshot());
    return Result;
  }

  /// Value snapshot of the per-thread accumulators, ordered by thread id.
  std::vector<ThreadLineStats> threads() const {
    return ThreadStats.snapshot();
  }

  /// Number of distinct threads that accessed the grain.
  size_t threadCount() const { return ThreadStats.distinctThreads(); }

  /// The whole grain as the granularity-neutral finding source the report
  /// builders consume.
  GrainSnapshot snapshot(uint64_t Base) const {
    GrainSnapshot Result;
    Result.Base = Base;
    Result.Accesses = accesses();
    Result.Writes = writes();
    Result.Cycles = cycles();
    Result.Invalidations = invalidations();
    Result.Buckets = buckets();
    Result.Threads = threads();
    return Result;
  }

  /// Access to the invalidation table (tests). This is the packed
  /// single-word CAS state machine from CacheLineTable.h, storing actor
  /// ids.
  const CacheLineTable &table() const { return Table; }

  /// Exact bytes of heap memory behind this grain's detailed tracking
  /// (object, bucket slots, and every per-thread stats chunk) — feeds the
  /// memory ablation's honest accounting.
  size_t footprintBytes() const {
    return sizeof(GrainInfo) + BucketCount * sizeof(AtomicBucketStats) +
           ThreadStats.overflowBytes();
  }

  /// Remote-actor accesses recorded by the extras (0 for grains whose
  /// extras track none) — folded into the eviction residue so the
  /// conservation proof covers HasRemote stages too.
  uint64_t remoteAccesses() const { return ExtraStats.remoteAccesses(); }

protected:
  const typename Traits::Extras &extras() const { return ExtraStats; }

private:
  CacheLineTable Table;
  std::atomic<uint64_t> Invalidations{0};
  std::atomic<uint64_t> Accesses{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> Cycles{0};
  std::unique_ptr<AtomicBucketStats[]> Buckets;
  uint64_t BucketCount;
  [[no_unique_address]] typename Traits::Extras ExtraStats;
  ThreadStatsChain ThreadStats;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_GRAININFO_H
