//===- core/detect/Detector.cpp - FS detection over samples ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/Detector.h"

#include "support/Assert.h"

using namespace cheetah;
using namespace cheetah::core;

/// The line grain stage: actors are threads, buckets are the line's 4-byte
/// words, and an access wider than a word spans several buckets.
struct Detector::LineStage {
  Detector &D;
  uint8_t AccessBytes;

  struct Prep {};
  struct Decoded {
    ThreadId Actor;
    uint64_t Bucket;
    uint64_t Span;
    LineAccessContext Ctx;
  };

  ShadowMemory &table() { return D.Shadow; }
  uint32_t threshold() const { return D.Config.WriteThreshold; }

  Prep prepare(const pmu::Sample &) { return {}; }

  Decoded decode(const pmu::Sample &Sample, const Prep &) {
    uint64_t WordIndex = D.Geometry.wordInLine(Sample.Address);
    uint64_t LastByte = D.Geometry.offsetInLine(Sample.Address) +
                        (AccessBytes ? AccessBytes : 1) - 1;
    if (LastByte >= D.Geometry.lineSize())
      LastByte = D.Geometry.lineSize() - 1; // clamp straddling accesses
    uint64_t WordSpan = LastByte / WordSize - WordIndex + 1;
    return {Sample.Tid, WordIndex, WordSpan, {}};
  }

  void tally(bool Invalidation, const Decoded &) {
    if (Invalidation)
      D.Invalidations.fetch_add(1, std::memory_order_relaxed);
    D.SamplesRecorded.fetch_add(1, std::memory_order_relaxed);
  }
};

/// The page grain stage: actors are NUMA nodes, buckets are the page's
/// cache lines, and preparation publishes the first-touch home — on every
/// covered sample regardless of phase, exactly like the OS placement
/// policy being modeled.
struct Detector::PageStage {
  Detector &D;

  struct Prep {
    NodeId Node;
    NodeId Home;
  };
  struct Decoded {
    NodeId Actor;
    uint64_t Bucket;
    uint64_t Span;
    PageAccessContext Ctx;
  };

  PageTable &table() { return *D.Pages; }
  uint32_t threshold() const { return D.Config.PageWriteThreshold; }

  Prep prepare(const pmu::Sample &Sample) {
    NodeId Node = D.Topology->nodeOf(Sample.Tid);
    NodeId Home = D.Pages->noteTouch(Sample.Address, Node);
    return {Node, Home};
  }

  Decoded decode(const pmu::Sample &Sample, const Prep &P) {
    bool Remote = P.Node != P.Home;
    // Which node pair the sample crossed: the distance evidence behind the
    // remoteByDistance report breakdown and the distance-weighted page
    // assessment. Local samples cross nothing.
    uint32_t Distance = Remote ? D.Topology->distance(P.Node, P.Home) : 0;
    return {P.Node, D.Pages->lineIndexInPage(Sample.Address), 1,
            {Remote, Distance}};
  }

  void tally(bool Invalidation, const Decoded &A) {
    if (Invalidation)
      D.PageInvalidations.fetch_add(1, std::memory_order_relaxed);
    if (A.Ctx.Remote)
      D.RemoteSamples.fetch_add(1, std::memory_order_relaxed);
    D.PageSamplesRecorded.fetch_add(1, std::memory_order_relaxed);
  }
};

template <typename Stage>
bool Detector::runGrainStage(Stage &S, const pmu::Sample &Sample,
                             bool InParallelPhase) {
  auto &Table = S.table();

  // Stage 1: cheap write counting on every covered sample. This is what
  // makes write-once memory never pay for detailed tracking. Atomic, so
  // concurrent ingesters never lose a count.
  uint32_t GrainWrites = Sample.IsWrite ? Table.noteWrite(Sample.Address)
                                        : Table.writeCount(Sample.Address);
  auto Prep = S.prepare(Sample);

  if (Config.OnlyParallelPhases && !InParallelPhase)
    return false;

  // Stage 2: detailed tracking only for susceptible grains.
  auto *Info = Table.detail(Sample.Address);
  if (!Info) {
    if (GrainWrites <= S.threshold())
      return false;
    Info = &Table.materializeDetail(Sample.Address);
  }

  auto Decoded = S.decode(Sample, Prep);
  // The table dispatches to the build's ingestion mode: the default
  // lock-free shared path, the striped-mutex A/B path, or the per-thread
  // shard path merged at quiesce().
  bool Invalidation = Table.record(
      Sample.Address, *Info, Sample.Tid, Decoded.Actor,
      Sample.IsWrite ? AccessKind::Write : AccessKind::Read, Decoded.Bucket,
      Decoded.Span, Sample.LatencyCycles, Decoded.Ctx);
  S.tally(Invalidation, Decoded);
  return true;
}

bool Detector::handleSample(const pmu::Sample &Sample, bool InParallelPhase,
                            uint8_t AccessBytes) {
  SamplesSeen.fetch_add(1, std::memory_order_relaxed);
  if (!Shadow.covers(Sample.Address)) {
    // Kernel, libraries, stack: Cheetah filters these out (Section 4.1).
    SamplesFiltered.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  bool PageRecorded = false;
  if (Pages && Config.TrackPages) {
    PageStage Stage{*this};
    PageRecorded = runGrainStage(Stage, Sample, InParallelPhase);
  }
  if (!Config.TrackLines)
    return PageRecorded;

  LineStage Stage{*this, AccessBytes};
  bool LineRecorded = runGrainStage(Stage, Sample, InParallelPhase);
  return LineRecorded || PageRecorded;
}

void Detector::quiesce() {
  MergedLines += Shadow.quiesce();
  if (Pages)
    MergedPages += Pages->quiesce();
#if CHEETAH_SHARDED_TABLE
  // In the sharded build every detailed record went through a shard, so
  // the cumulative merge totals must conserve exactly against the shared
  // counters the detector kept alongside — the proof that no sample was
  // lost between a shard and the shared table.
  CHEETAH_ASSERT(MergedLines.Accesses ==
                     SamplesRecorded.load(std::memory_order_relaxed),
                 "sharded merge lost line samples");
  CHEETAH_ASSERT(MergedLines.Invalidations ==
                     Invalidations.load(std::memory_order_relaxed),
                 "sharded merge lost line invalidations");
  CHEETAH_ASSERT(MergedPages.Accesses ==
                     PageSamplesRecorded.load(std::memory_order_relaxed),
                 "sharded merge lost page samples");
  CHEETAH_ASSERT(MergedPages.Invalidations ==
                     PageInvalidations.load(std::memory_order_relaxed),
                 "sharded merge lost cross-node invalidations");
  CHEETAH_ASSERT(MergedPages.RemoteAccesses ==
                     RemoteSamples.load(std::memory_order_relaxed),
                 "sharded merge lost remote samples");
#endif
}

std::vector<GrainStageSummary> Detector::stageSummaries() const {
  std::vector<GrainStageSummary> Result;
  DetectorStats Stats = stats();
  if (Config.TrackLines) {
    GrainStageSummary Line;
    Line.Name = LineGrainTraits::Name;
    Line.SamplesRecorded = Stats.SamplesRecorded;
    Line.Invalidations = Stats.Invalidations;
    Result.push_back(std::move(Line));
  }
  if (Pages && Config.TrackPages) {
    GrainStageSummary Page;
    Page.Name = PageGrainTraits::Name;
    Page.SamplesRecorded = Stats.PageSamplesRecorded;
    Page.Invalidations = Stats.PageInvalidations;
    Page.RemoteSamples = Stats.RemoteSamples;
    Page.HasRemote = true;
    Result.push_back(std::move(Page));
  }
  return Result;
}
