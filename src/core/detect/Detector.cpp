//===- core/detect/Detector.cpp - FS detection over samples ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/Detector.h"

#if CHEETAH_LOCKED_TABLE
#include <mutex>
#endif

using namespace cheetah;
using namespace cheetah::core;

bool Detector::handlePageSample(const pmu::Sample &Sample,
                                bool InParallelPhase) {
  // Page stage 1 mirrors the line stage: cheap write counting plus the
  // first-touch home publication, on every covered sample. Homes are set
  // even during serial phases — placement happens at first touch no matter
  // who is running, exactly like the OS policy being modeled.
  NodeId Node = Topology->nodeOf(Sample.Tid);
  uint32_t PageWrites = Sample.IsWrite ? Pages->noteWrite(Sample.Address)
                                       : Pages->writeCount(Sample.Address);
  NodeId Home = Pages->noteTouch(Sample.Address, Node);

  if (Config.OnlyParallelPhases && !InParallelPhase)
    return false;

  // Page stage 2: detailed tracking only for susceptible pages.
  PageInfo *Info = Pages->detail(Sample.Address);
  if (!Info) {
    if (PageWrites <= Config.PageWriteThreshold)
      return false;
    Info = &Pages->materializeDetail(Sample.Address);
  }

  bool Remote = Node != Home;
  // Which node pair the sample crossed: the distance evidence behind the
  // remoteByDistance report breakdown and the distance-weighted page
  // assessment. Local samples cross nothing.
  uint32_t Distance = Remote ? Topology->distance(Node, Home) : 0;
  uint64_t LineIndex = Pages->lineIndexInPage(Sample.Address);
  bool Invalidation;
  {
#if CHEETAH_LOCKED_TABLE
    // A/B build only: serialize page detail mutation with a striped mutex
    // so the locked-vs-lock-free sweep covers the page path too.
    std::lock_guard<std::mutex> Lock(Pages->pageLock(Sample.Address));
#endif
    Invalidation = Info->recordAccess(
        Sample.Tid, Node,
        Sample.IsWrite ? AccessKind::Write : AccessKind::Read, LineIndex,
        Sample.LatencyCycles, Remote, Distance);
  }
  if (Invalidation)
    PageInvalidations.fetch_add(1, std::memory_order_relaxed);
  if (Remote)
    RemoteSamples.fetch_add(1, std::memory_order_relaxed);
  PageSamplesRecorded.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Detector::handleSample(const pmu::Sample &Sample, bool InParallelPhase,
                            uint8_t AccessBytes) {
  SamplesSeen.fetch_add(1, std::memory_order_relaxed);
  if (!Shadow.covers(Sample.Address)) {
    // Kernel, libraries, stack: Cheetah filters these out (Section 4.1).
    SamplesFiltered.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  bool PageRecorded = false;
  if (Pages && Config.TrackPages)
    PageRecorded = handlePageSample(Sample, InParallelPhase);
  if (!Config.TrackLines)
    return PageRecorded;

  // Stage 1: cheap write counting on every covered sample. This is what
  // makes write-once memory never pay for detailed tracking. Atomic, so
  // concurrent ingesters never lose a count.
  uint32_t LineWrites = 0;
  if (Sample.IsWrite)
    LineWrites = Shadow.noteWrite(Sample.Address);
  else
    LineWrites = Shadow.writeCount(Sample.Address);

  if (Config.OnlyParallelPhases && !InParallelPhase)
    return PageRecorded;

  // Stage 2: detailed tracking only for susceptible lines.
  CacheLineInfo *Info = Shadow.detail(Sample.Address);
  if (!Info) {
    if (LineWrites <= Config.WriteThreshold)
      return PageRecorded;
    Info = &Shadow.materializeDetail(Sample.Address);
  }

  uint64_t WordIndex = Geometry.wordInLine(Sample.Address);
  uint64_t LastByte = Geometry.offsetInLine(Sample.Address) +
                      (AccessBytes ? AccessBytes : 1) - 1;
  if (LastByte >= Geometry.lineSize())
    LastByte = Geometry.lineSize() - 1; // clamp straddling accesses
  uint64_t WordSpan = LastByte / WordSize - WordIndex + 1;

  bool Invalidation;
  {
#if CHEETAH_LOCKED_TABLE
    // A/B build only: serialize detail mutation with the PR-1 striped line
    // mutex so the cost of the lock itself is measurable against the
    // default lock-free path.
    std::lock_guard<std::mutex> Lock(Shadow.lineLock(Sample.Address));
#endif
    // CacheLineInfo::recordAccess is lock-free: the two-entry table is one
    // CAS word and every counter is a relaxed atomic, so no serialization
    // is needed here in the default build.
    Invalidation = Info->recordAccess(
        Sample.Tid, Sample.IsWrite ? AccessKind::Write : AccessKind::Read,
        WordIndex, WordSpan, Sample.LatencyCycles);
  }
  if (Invalidation)
    Invalidations.fetch_add(1, std::memory_order_relaxed);
  SamplesRecorded.fetch_add(1, std::memory_order_relaxed);
  return true;
}
