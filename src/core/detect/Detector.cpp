//===- core/detect/Detector.cpp - FS detection over samples ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/Detector.h"

#include "support/Assert.h"
#include "support/CpuFeatures.h"

#include <algorithm>
#include <type_traits>

using namespace cheetah;
using namespace cheetah::core;

namespace {

/// How many iterations ahead the batched sweeps issue their software
/// prefetches: far enough that a DRAM miss has left by the time the demand
/// access arrives, near enough that the prefetched line is still cached.
constexpr size_t PrefetchDistance = 8;

/// Per-ingesting-thread scratch behind the staged batch pipeline: decoded
/// line coordinates plus the per-stage working arrays. Thread-local so
/// concurrent batch deliveries never share it and no batch allocates.
struct BatchScratch {
  DecodedBatch Decode;
  /// Post-sample stage-1 write counts (0 for uncovered samples).
  uint32_t Writes[DecodedBatch::Capacity];
  /// Indices of samples that survived the susceptibility filter.
  uint32_t Kept[DecodedBatch::Capacity];
  /// Detail pointers for the kept samples (nullptr until materialized).
  void *Infos[DecodedBatch::Capacity];
  /// 1 once any grain stage recorded the sample.
  uint8_t Recorded[DecodedBatch::Capacity];
  /// Page-stage prepare results (node of the accessing thread, settled
  /// first-touch home).
  NodeId Node[DecodedBatch::Capacity];
  NodeId Home[DecodedBatch::Capacity];
};

BatchScratch &batchScratch() {
  static thread_local BatchScratch Scratch;
  return Scratch;
}

} // namespace

/// The line grain stage: actors are threads, buckets are the line's 4-byte
/// words, and an access wider than a word spans several buckets.
struct Detector::LineStage {
  Detector &D;
  uint8_t AccessBytes;
  /// Vector-decoded coordinates when running under the batch pipeline.
  const DecodedBatch *Batch = nullptr;

  struct Prep {};
  struct Decoded {
    ThreadId Actor;
    uint64_t Bucket;
    uint64_t Span;
    LineAccessContext Ctx;
  };

  ShadowMemory &table() { return D.Shadow; }
  uint32_t threshold() const { return D.Config.WriteThreshold; }

  Prep prepare(const pmu::Sample &) { return {}; }

  Decoded decode(const pmu::Sample &Sample, const Prep &) {
    uint64_t WordIndex = D.Geometry.wordInLine(Sample.Address);
    uint64_t LastByte = D.Geometry.offsetInLine(Sample.Address) +
                        (AccessBytes ? AccessBytes : 1) - 1;
    if (LastByte >= D.Geometry.lineSize())
      LastByte = D.Geometry.lineSize() - 1; // clamp straddling accesses
    uint64_t WordSpan = LastByte / WordSize - WordIndex + 1;
    return {Sample.Tid, WordIndex, WordSpan, {}};
  }

  // Batch pipeline hooks: stage-1 state to pull ahead of the counter
  // sweep, per-sample preparation (none at line grain), and the decoded
  // coordinates — already computed data-parallel for the whole chunk.
  void prefetchStage1(uint64_t Address) { D.Shadow.prefetchWriteCounter(Address); }
  void prepareAt(size_t, const pmu::Sample &) {}
  Decoded decodeAt(size_t I, const pmu::Sample &Sample) {
    return {Sample.Tid, Batch->Bucket[I], Batch->Span[I], {}};
  }

  void tally(bool Invalidation, const Decoded &) {
    if (Invalidation)
      D.Invalidations.fetch_add(1, std::memory_order_relaxed);
    D.SamplesRecorded.fetch_add(1, std::memory_order_relaxed);
  }
};

/// The page grain stage: actors are NUMA nodes, buckets are the page's
/// cache lines, and preparation publishes the first-touch home — on every
/// covered sample regardless of phase, exactly like the OS placement
/// policy being modeled.
struct Detector::PageStage {
  Detector &D;
  /// Batch-pipeline prepare results, stored per sample index (the scratch
  /// Node/Home arrays) so decodeAt can run in a later sweep.
  NodeId *Nodes = nullptr;
  NodeId *Homes = nullptr;

  struct Prep {
    NodeId Node;
    NodeId Home;
  };
  struct Decoded {
    NodeId Actor;
    uint64_t Bucket;
    uint64_t Span;
    PageAccessContext Ctx;
  };

  PageTable &table() { return *D.Pages; }
  uint32_t threshold() const { return D.Config.PageWriteThreshold; }

  Prep prepare(const pmu::Sample &Sample) {
    NodeId Node = D.Topology->nodeOf(Sample.Tid);
    NodeId Home = D.Pages->noteTouch(Sample.Address, Node);
    return {Node, Home};
  }

  Decoded decode(const pmu::Sample &Sample, const Prep &P) {
    bool Remote = P.Node != P.Home;
    // Which node pair the sample crossed: the distance evidence behind the
    // remoteByDistance report breakdown and the distance-weighted page
    // assessment. Local samples cross nothing.
    uint32_t Distance = Remote ? D.Topology->distance(P.Node, P.Home) : 0;
    return {P.Node, D.Pages->lineIndexInPage(Sample.Address), 1,
            {Remote, Distance}};
  }

  // Batch pipeline hooks. Preparation (first-touch home publication) runs
  // in the stage-1 sweep for every covered sample regardless of phase,
  // exactly like the per-sample path: homes are a placement property, not
  // a sharing observation.
  void prefetchStage1(uint64_t Address) {
    D.Pages->prefetchWriteCounter(Address);
    D.Pages->prefetchHome(Address);
  }
  void prepareAt(size_t I, const pmu::Sample &Sample) {
    Prep P = prepare(Sample);
    Nodes[I] = P.Node;
    Homes[I] = P.Home;
  }
  Decoded decodeAt(size_t I, const pmu::Sample &Sample) {
    return decode(Sample, Prep{Nodes[I], Homes[I]});
  }

  void tally(bool Invalidation, const Decoded &A) {
    if (Invalidation)
      D.PageInvalidations.fetch_add(1, std::memory_order_relaxed);
    if (A.Ctx.Remote)
      D.RemoteSamples.fetch_add(1, std::memory_order_relaxed);
    D.PageSamplesRecorded.fetch_add(1, std::memory_order_relaxed);
  }
};

template <typename Stage>
bool Detector::runGrainStage(Stage &S, const pmu::Sample &Sample,
                             bool InParallelPhase) {
  auto &Table = S.table();

  // Stage 1: cheap write counting on every covered sample. This is what
  // makes write-once memory never pay for detailed tracking. Atomic, so
  // concurrent ingesters never lose a count.
  uint32_t GrainWrites = Sample.IsWrite ? Table.noteWrite(Sample.Address)
                                        : Table.writeCount(Sample.Address);
  auto Prep = S.prepare(Sample);

  if (Config.OnlyParallelPhases && !InParallelPhase)
    return false;

  // Stage 2: detailed tracking only for susceptible grains.
  auto *Info = Table.detail(Sample.Address);
  if (!Info) {
    if (GrainWrites <= S.threshold())
      return false;
    Info = &Table.materializeDetail(Sample.Address);
  }

  auto Decoded = S.decode(Sample, Prep);
  // The table dispatches to the build's ingestion mode: the default
  // lock-free shared path, the striped-mutex A/B path, or the per-thread
  // shard path merged at quiesce().
  bool Invalidation = Table.record(
      Sample.Address, *Info, Sample.Tid, Decoded.Actor,
      Sample.IsWrite ? AccessKind::Write : AccessKind::Read, Decoded.Bucket,
      Decoded.Span, Sample.LatencyCycles, Decoded.Ctx);
  S.tally(Invalidation, Decoded);
  return true;
}

template <typename Stage>
size_t Detector::runGrainStageBatch(Stage &S, const pmu::Sample *Samples,
                                    size_t Count, const uint8_t *Covered,
                                    bool InParallelPhase, uint8_t *Recorded) {
  using InfoT = typename std::remove_reference_t<decltype(S.table())>::Info;
  auto &Table = S.table();
  BatchScratch &Scratch = batchScratch();

  // Stage-1 sweep: write counters (and stage preparation) for every
  // covered sample, with the counter slots software-prefetched a fixed
  // distance ahead — the walk is random-address, so without the prefetch
  // each miss would serialize behind the previous one.
  for (size_t I = 0; I < Count; ++I) {
    size_t Ahead = I + PrefetchDistance;
    if (Ahead < Count && Covered[Ahead])
      S.prefetchStage1(Samples[Ahead].Address);
    Scratch.Writes[I] = 0;
    if (!Covered[I])
      continue;
    const pmu::Sample &Sample = Samples[I];
    Scratch.Writes[I] = Sample.IsWrite ? Table.noteWrite(Sample.Address)
                                       : Table.writeCount(Sample.Address);
    S.prepareAt(I, Sample);
  }

  if (Config.OnlyParallelPhases && !InParallelPhase)
    return 0;

  // Branchless stage-1 filter: compact the survivors' indices without a
  // single data-dependent branch, and without loading any detail pointer —
  // cold samples never dereference the shadow. The count-only predicate is
  // exactly the per-sample detail-or-threshold check because write counts
  // are monotone: a grain's detail exists iff some earlier sample already
  // saw its count above the threshold.
  const uint32_t Threshold = S.threshold();
  size_t NumKept = 0;
  for (size_t I = 0; I < Count; ++I) {
    Scratch.Kept[NumKept] = static_cast<uint32_t>(I);
    NumKept += Covered[I] &
               static_cast<uint8_t>(Scratch.Writes[I] > Threshold);
  }

  // Lookup sweep: resolve the survivors' detail pointers with the slot
  // array prefetched ahead (distance-pipelined — the first few iterations
  // pay their miss, the rest overlap).
  for (size_t J = 0; J < NumKept; ++J) {
    size_t Ahead = J + PrefetchDistance;
    if (Ahead < NumKept)
      Table.prefetchDetail(Samples[Scratch.Kept[Ahead]].Address);
    Scratch.Infos[J] = Table.detail(Samples[Scratch.Kept[J]].Address);
  }

  // Record sweep: prefetch the grain records themselves ahead, then run
  // the mode-dispatched record in original batch order (per-grain record
  // order is what keeps reports byte-identical with per-sample delivery).
  for (size_t J = 0; J < NumKept; ++J) {
    size_t Ahead = J + PrefetchDistance;
    if (Ahead < NumKept && Scratch.Infos[Ahead])
      support::prefetchForWrite(Scratch.Infos[Ahead]);
    size_t I = Scratch.Kept[J];
    const pmu::Sample &Sample = Samples[I];
    auto *Info = static_cast<InfoT *>(Scratch.Infos[J]);
    if (!Info)
      Info = &Table.materializeDetail(Sample.Address);
    auto Decoded = S.decodeAt(I, Sample);
    bool Invalidation = Table.record(
        Sample.Address, *Info, Sample.Tid, Decoded.Actor,
        Sample.IsWrite ? AccessKind::Write : AccessKind::Read, Decoded.Bucket,
        Decoded.Span, Sample.LatencyCycles, Decoded.Ctx);
    S.tally(Invalidation, Decoded);
    Recorded[I] = 1;
  }
  return NumKept;
}

size_t Detector::handleBatch(const pmu::Sample *Samples, size_t Count,
                             bool InParallelPhase, uint8_t AccessBytes) {
  size_t TotalRecorded = 0;
  BatchScratch &Scratch = batchScratch();
  for (size_t Offset = 0; Offset < Count; Offset += DecodedBatch::Capacity) {
    size_t Chunk = std::min(Count - Offset, DecodedBatch::Capacity);
    const pmu::Sample *ChunkSamples = Samples + Offset;

    // Vector decode of the whole chunk: coverage flags plus word/span line
    // coordinates, through the runtime-dispatched kernel.
    LineDecoder.decode(ChunkSamples, Chunk, AccessBytes, Scratch.Decode);

    SamplesSeen.fetch_add(Chunk, std::memory_order_relaxed);
    uint64_t CoveredCount = 0;
    for (size_t I = 0; I < Chunk; ++I) {
      CoveredCount += Scratch.Decode.Covered[I];
      Scratch.Recorded[I] = 0;
    }
    if (CoveredCount != Chunk)
      SamplesFiltered.fetch_add(Chunk - CoveredCount,
                                std::memory_order_relaxed);

    if (Pages && Config.TrackPages) {
      PageStage Stage{*this, Scratch.Node, Scratch.Home};
      runGrainStageBatch(Stage, ChunkSamples, Chunk, Scratch.Decode.Covered,
                         InParallelPhase, Scratch.Recorded);
    }
    if (Config.TrackLines) {
      LineStage Stage{*this, AccessBytes, &Scratch.Decode};
      runGrainStageBatch(Stage, ChunkSamples, Chunk, Scratch.Decode.Covered,
                         InParallelPhase, Scratch.Recorded);
    }
    for (size_t I = 0; I < Chunk; ++I)
      TotalRecorded += Scratch.Recorded[I];
  }
  return TotalRecorded;
}

bool Detector::handleSample(const pmu::Sample &Sample, bool InParallelPhase,
                            uint8_t AccessBytes) {
  SamplesSeen.fetch_add(1, std::memory_order_relaxed);
  if (!Shadow.covers(Sample.Address)) {
    // Kernel, libraries, stack: Cheetah filters these out (Section 4.1).
    SamplesFiltered.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  bool PageRecorded = false;
  if (Pages && Config.TrackPages) {
    PageStage Stage{*this};
    PageRecorded = runGrainStage(Stage, Sample, InParallelPhase);
  }
  if (!Config.TrackLines)
    return PageRecorded;

  LineStage Stage{*this, AccessBytes};
  bool LineRecorded = runGrainStage(Stage, Sample, InParallelPhase);
  return LineRecorded || PageRecorded;
}

void Detector::quiesce() {
  MergedLines += Shadow.quiesce();
  if (Pages)
    MergedPages += Pages->quiesce();
#if CHEETAH_SHARDED_TABLE
  // In the sharded build every detailed record went through a shard, so
  // the cumulative merge totals must conserve exactly against the shared
  // counters the detector kept alongside — the proof that no sample was
  // lost between a shard and the shared table.
  CHEETAH_ASSERT(MergedLines.Accesses ==
                     SamplesRecorded.load(std::memory_order_relaxed),
                 "sharded merge lost line samples");
  CHEETAH_ASSERT(MergedLines.Invalidations ==
                     Invalidations.load(std::memory_order_relaxed),
                 "sharded merge lost line invalidations");
  CHEETAH_ASSERT(MergedPages.Accesses ==
                     PageSamplesRecorded.load(std::memory_order_relaxed),
                 "sharded merge lost page samples");
  CHEETAH_ASSERT(MergedPages.Invalidations ==
                     PageInvalidations.load(std::memory_order_relaxed),
                 "sharded merge lost cross-node invalidations");
  CHEETAH_ASSERT(MergedPages.RemoteAccesses ==
                     RemoteSamples.load(std::memory_order_relaxed),
                 "sharded merge lost remote samples");
#endif
}

std::vector<GrainStageSummary> Detector::stageSummaries() const {
  std::vector<GrainStageSummary> Result;
  DetectorStats Stats = stats();
  if (Config.TrackLines) {
    GrainStageSummary Line;
    Line.Name = LineGrainTraits::Name;
    Line.SamplesRecorded = Stats.SamplesRecorded;
    Line.Invalidations = Stats.Invalidations;
    Result.push_back(std::move(Line));
  }
  if (Pages && Config.TrackPages) {
    GrainStageSummary Page;
    Page.Name = PageGrainTraits::Name;
    Page.SamplesRecorded = Stats.PageSamplesRecorded;
    Page.Invalidations = Stats.PageInvalidations;
    Page.RemoteSamples = Stats.RemoteSamples;
    Page.HasRemote = true;
    Result.push_back(std::move(Page));
  }
  return Result;
}
