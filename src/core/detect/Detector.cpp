//===- core/detect/Detector.cpp - FS detection over samples ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/Detector.h"

using namespace cheetah;
using namespace cheetah::core;

bool Detector::handleSample(const pmu::Sample &Sample, bool InParallelPhase,
                            uint8_t AccessBytes) {
  ++Stats.SamplesSeen;
  if (!Shadow.covers(Sample.Address)) {
    // Kernel, libraries, stack: Cheetah filters these out (Section 4.1).
    ++Stats.SamplesFiltered;
    return false;
  }

  // Stage 1: cheap write counting on every covered sample. This is what
  // makes write-once memory never pay for detailed tracking.
  uint32_t LineWrites = 0;
  if (Sample.IsWrite)
    LineWrites = Shadow.noteWrite(Sample.Address);
  else
    LineWrites = Shadow.writeCount(Sample.Address);

  if (Config.OnlyParallelPhases && !InParallelPhase)
    return false;

  // Stage 2: detailed tracking only for susceptible lines.
  CacheLineInfo *Info = Shadow.detail(Sample.Address);
  if (!Info) {
    if (LineWrites <= Config.WriteThreshold)
      return false;
    Info = &Shadow.materializeDetail(Sample.Address);
  }

  uint64_t WordIndex = Geometry.wordInLine(Sample.Address);
  uint64_t LastByte = Geometry.offsetInLine(Sample.Address) +
                      (AccessBytes ? AccessBytes : 1) - 1;
  if (LastByte >= Geometry.lineSize())
    LastByte = Geometry.lineSize() - 1; // clamp straddling accesses
  uint64_t WordSpan = LastByte / WordSize - WordIndex + 1;

  bool Invalidation = Info->recordAccess(
      Sample.Tid, Sample.IsWrite ? AccessKind::Write : AccessKind::Read,
      WordIndex, WordSpan, Sample.LatencyCycles);
  if (Invalidation)
    ++Stats.Invalidations;
  ++Stats.SamplesRecorded;
  return true;
}
