//===- core/detect/CacheLineTable.h - Two-entry access table ---*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two-entry access table (Section 2.3). Prior work (Zhao et
/// al.) tracked one ownership bit per thread per line, which does not scale
/// past 32 threads; Cheetah's observation is that the invalidation decision
/// only needs to know whether the set of recent accessors is empty, a single
/// thread (self or other), or at least two distinct threads — states a
/// two-entry table represents exactly, in constant memory independent of
/// thread count. The entries are always from distinct threads by
/// construction.
///
/// Invalidation rule ("a write to a cache line that has been accessed by
/// other threads recently incurs a cache invalidation"), transcribed from
/// the paper:
///  - Read by t: recorded only if the table is not full and every existing
///    entry is from a different thread; otherwise ignored.
///  - Write by t: if the table is full, it is an invalidation (at least one
///    entry is another thread). If the table holds exactly one entry from t
///    itself, the write is skipped. In all other cases (single entry from
///    another thread, or an empty table) the write incurs an invalidation.
///    On invalidation the table is flushed and the write is recorded, so
///    the table is never empty afterwards.
///
/// Because the whole table is two (thread id, kind) pairs plus occupancy,
/// it packs into a single 64-bit word, so every transition above is one
/// atomic compare-and-swap: concurrent ingesting threads update the table
/// lock-free, each access linearizing at its CAS (or at its load, for the
/// transitions that leave the table unchanged). This is what lets the
/// detection hot path run with no mutex at all — unlike the per-thread
/// ownership bitmaps, which would need a multi-word critical section.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_CACHELINETABLE_H
#define CHEETAH_CORE_DETECT_CACHELINETABLE_H

#include "mem/MemoryAccess.h"

#include <atomic>
#include <cstdint>

namespace cheetah {
namespace core {

/// The per-cache-line two-entry access history table, packed into one
/// atomic 64-bit word:
///
///   bits  0..29  entry 0 thread id     bits 32..61  entry 1 thread id
///   bit   30     entry 0 kind (write)  bit   62     entry 1 kind (write)
///   bit   31     entry 0 valid         bit   63     entry 1 valid
///
/// Entries fill in order, so entry 1 valid implies entry 0 valid and the
/// occupancy count is the number of valid bits. Thread ids are stored
/// modulo 2^30 — far beyond any real per-process thread population, and
/// still constant-size where the ownership-bitmap baseline needs one bit
/// per thread.
class CacheLineTable {
public:
  /// One recorded access.
  struct Entry {
    ThreadId Tid = 0;
    AccessKind Kind = AccessKind::Read;
  };

  /// Applies the paper's rule for one access as a CAS loop; safe to call
  /// from many threads concurrently with no external lock.
  /// \returns true if the access (necessarily a write) incurred a cache
  /// invalidation.
  bool recordAccess(ThreadId Tid, AccessKind Kind) {
    if (Kind == AccessKind::Read) {
      recordRead(Tid);
      return false;
    }
    return recordWrite(Tid);
  }

  /// Number of live entries (0, 1, or 2).
  unsigned size() const { return occupancy(Packed.load(std::memory_order_relaxed)); }

  /// \returns a snapshot of the entry at \p Index (< size()).
  Entry entry(unsigned Index) const {
    return unpackEntry(Packed.load(std::memory_order_relaxed), Index);
  }

  /// True if some entry belongs to \p Tid.
  bool containsThread(ThreadId Tid) const {
    uint64_t Word = Packed.load(std::memory_order_relaxed);
    for (unsigned I = 0, N = occupancy(Word); I < N; ++I)
      if (unpackEntry(Word, I).Tid == (Tid & TidMask))
        return true;
    return false;
  }

  /// Empties the table.
  void flush() { Packed.store(0, std::memory_order_relaxed); }

private:
  static constexpr uint64_t TidBits = 30;
  static constexpr uint64_t TidMask = (uint64_t(1) << TidBits) - 1;
  static constexpr uint64_t KindBit = uint64_t(1) << TidBits;  // within entry
  static constexpr uint64_t ValidBit = uint64_t(1) << (TidBits + 1);
  static constexpr unsigned EntryShift = 32;

  static uint64_t packEntry(ThreadId Tid, AccessKind Kind) {
    return (uint64_t(Tid) & TidMask) | ValidBit |
           (Kind == AccessKind::Write ? KindBit : 0);
  }

  static Entry unpackEntry(uint64_t Word, unsigned Index) {
    uint64_t Bits = Word >> (Index ? EntryShift : 0);
    Entry E;
    E.Tid = static_cast<ThreadId>(Bits & TidMask);
    E.Kind = (Bits & KindBit) ? AccessKind::Write : AccessKind::Read;
    return E;
  }

  static unsigned occupancy(uint64_t Word) {
    return ((Word >> (TidBits + 1)) & 1) +
           ((Word >> (EntryShift + TidBits + 1)) & 1);
  }

  static ThreadId entryTid(uint64_t Word, unsigned Index) {
    return static_cast<ThreadId>((Word >> (Index ? EntryShift : 0)) & TidMask);
  }

  void recordRead(ThreadId Tid) {
    uint64_t Old = Packed.load(std::memory_order_relaxed);
    for (;;) {
      unsigned Count = occupancy(Old);
      // "If the table T is not full, and the existing entry is coming from
      // a different thread, Cheetah records this read access."
      if (Count == 2)
        return;
      if (Count == 1 && entryTid(Old, 0) == (Tid & TidMask))
        return;
      uint64_t New = Count == 0
                         ? packEntry(Tid, AccessKind::Read)
                         : Old | (packEntry(Tid, AccessKind::Read)
                                  << EntryShift);
      if (Packed.compare_exchange_weak(Old, New, std::memory_order_relaxed,
                                       std::memory_order_relaxed))
        return;
    }
  }

  bool recordWrite(ThreadId Tid) {
    uint64_t Old = Packed.load(std::memory_order_relaxed);
    for (;;) {
      unsigned Count = occupancy(Old);
      // Single entry from ourselves: nothing to update, no invalidation.
      if (Count == 1 && entryTid(Old, 0) == (Tid & TidMask))
        return false;
      // Full table (at least one entry is another thread — entries are
      // distinct), single entry from another thread, or an empty table:
      // "this write access incurs at least a cache invalidation. The table
      // is flushed, and the write access is recorded in the table to
      // maintain the table as not empty." (The empty-table case counts the
      // first write; the paper accepts this one-per-line overcount to keep
      // the table never-empty invariant.)
      uint64_t New = packEntry(Tid, AccessKind::Write);
      if (Packed.compare_exchange_weak(Old, New, std::memory_order_relaxed,
                                       std::memory_order_relaxed))
        return true;
    }
  }

  std::atomic<uint64_t> Packed{0};
};

static_assert(sizeof(CacheLineTable) == sizeof(uint64_t),
              "the two-entry table must stay one atomic word");

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_CACHELINETABLE_H
