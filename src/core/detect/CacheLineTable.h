//===- core/detect/CacheLineTable.h - Two-entry access table ---*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two-entry access table (Section 2.3). Prior work (Zhao et
/// al.) tracked one ownership bit per thread per line, which does not scale
/// past 32 threads; Cheetah's observation is that the invalidation decision
/// only needs to know whether the set of recent accessors is empty, a single
/// thread (self or other), or at least two distinct threads — states a
/// two-entry table represents exactly, in constant memory independent of
/// thread count. The entries are always from distinct threads by
/// construction.
///
/// Invalidation rule ("a write to a cache line that has been accessed by
/// other threads recently incurs a cache invalidation"), transcribed from
/// the paper:
///  - Read by t: recorded only if the table is not full and every existing
///    entry is from a different thread; otherwise ignored.
///  - Write by t: if the table is full, it is an invalidation (at least one
///    entry is another thread). If the table holds exactly one entry from t
///    itself, the write is skipped. In all other cases (single entry from
///    another thread, or an empty table) the write incurs an invalidation.
///    On invalidation the table is flushed and the write is recorded, so
///    the table is never empty afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_CACHELINETABLE_H
#define CHEETAH_CORE_DETECT_CACHELINETABLE_H

#include "mem/MemoryAccess.h"

#include <cstdint>

namespace cheetah {
namespace core {

/// The per-cache-line two-entry access history table.
class CacheLineTable {
public:
  /// One recorded access.
  struct Entry {
    ThreadId Tid = 0;
    AccessKind Kind = AccessKind::Read;
  };

  /// Applies the paper's rule for one access.
  /// \returns true if the access (necessarily a write) incurred a cache
  /// invalidation.
  bool recordAccess(ThreadId Tid, AccessKind Kind) {
    if (Kind == AccessKind::Read) {
      recordRead(Tid);
      return false;
    }
    return recordWrite(Tid);
  }

  /// Number of live entries (0, 1, or 2).
  unsigned size() const { return Count; }

  /// \returns the entry at \p Index (< size()).
  const Entry &entry(unsigned Index) const { return Entries[Index]; }

  /// True if some entry belongs to \p Tid.
  bool containsThread(ThreadId Tid) const {
    for (unsigned I = 0; I < Count; ++I)
      if (Entries[I].Tid == Tid)
        return true;
    return false;
  }

  /// Empties the table.
  void flush() { Count = 0; }

private:
  void recordRead(ThreadId Tid) {
    // "If the table T is not full, and the existing entry is coming from a
    // different thread, Cheetah records this read access."
    if (Count == 2)
      return;
    if (Count == 1 && Entries[0].Tid == Tid)
      return;
    Entries[Count++] = {Tid, AccessKind::Read};
  }

  bool recordWrite(ThreadId Tid) {
    // Full table: at least one entry is from another thread (entries are
    // distinct), so this write invalidates.
    if (Count == 2) {
      invalidateAndRecord(Tid);
      return true;
    }
    // Single entry from ourselves: nothing to update, no invalidation.
    if (Count == 1 && Entries[0].Tid == Tid)
      return false;
    // "In all other cases, this write access incurs at least a cache
    // invalidation": single entry from another thread, or an empty table.
    // (The empty-table case counts the first write; the paper accepts this
    // one-per-line overcount to keep the table never-empty invariant.)
    invalidateAndRecord(Tid);
    return true;
  }

  void invalidateAndRecord(ThreadId Tid) {
    // "The table is flushed, and the write access is recorded in the table
    // to maintain the table as not empty."
    Entries[0] = {Tid, AccessKind::Write};
    Count = 1;
  }

  Entry Entries[2];
  uint8_t Count = 0;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_CACHELINETABLE_H
