//===- core/detect/CacheLineInfo.cpp - Per-line detailed tracking --------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/CacheLineInfo.h"

#include "support/Assert.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

CacheLineInfo::ThreadStatsChunk::ThreadStatsChunk() {
  for (size_t I = 0; I < Capacity; ++I) {
    Tids[I].store(NoThread, std::memory_order_relaxed);
    Accesses[I].store(0, std::memory_order_relaxed);
    Cycles[I].store(0, std::memory_order_relaxed);
  }
}

CacheLineInfo::CacheLineInfo(uint64_t WordsPerLine)
    : Words(std::make_unique<AtomicWordStats[]>(WordsPerLine)),
      WordCount(WordsPerLine) {}

CacheLineInfo::~CacheLineInfo() {
  ThreadStatsChunk *Chunk =
      FirstThreads.Next.load(std::memory_order_acquire);
  while (Chunk) {
    ThreadStatsChunk *Next = Chunk->Next.load(std::memory_order_acquire);
    delete Chunk;
    Chunk = Next;
  }
}

void CacheLineInfo::AtomicWordStats::record(ThreadId Tid, AccessKind Kind,
                                            uint64_t LatencyCycles) {
  if (Kind == AccessKind::Read)
    Reads.fetch_add(1, std::memory_order_relaxed);
  else
    Writes.fetch_add(1, std::memory_order_relaxed);
  if (LatencyCycles)
    Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
  ThreadId First = FirstThread.load(std::memory_order_relaxed);
  if (First == NoThread &&
      FirstThread.compare_exchange_strong(First, Tid,
                                          std::memory_order_relaxed))
    First = Tid;
  // On CAS failure `First` holds the thread that won the publication race.
  if (First != Tid)
    MultiThread.store(true, std::memory_order_relaxed);
}

WordStats CacheLineInfo::AtomicWordStats::snapshot() const {
  WordStats Result;
  Result.Reads = Reads.load(std::memory_order_relaxed);
  Result.Writes = Writes.load(std::memory_order_relaxed);
  Result.Cycles = Cycles.load(std::memory_order_relaxed);
  Result.FirstThread = FirstThread.load(std::memory_order_relaxed);
  Result.MultiThread = MultiThread.load(std::memory_order_relaxed);
  return Result;
}

void CacheLineInfo::recordThread(ThreadId Tid, uint64_t LatencyCycles) {
  ThreadStatsChunk *Chunk = &FirstThreads;
  for (;;) {
    for (size_t I = 0; I < ThreadStatsChunk::Capacity; ++I) {
      ThreadId Slot = Chunk->Tids[I].load(std::memory_order_relaxed);
      if (Slot == NoThread &&
          Chunk->Tids[I].compare_exchange_strong(Slot, Tid,
                                                 std::memory_order_relaxed))
        Slot = Tid;
      // On CAS failure `Slot` holds the claiming thread's id, which may
      // still be ours if another ingester raced the same sample tid.
      if (Slot == Tid) {
        Chunk->Accesses[I].fetch_add(1, std::memory_order_relaxed);
        Chunk->Cycles[I].fetch_add(LatencyCycles, std::memory_order_relaxed);
        return;
      }
    }
    ThreadStatsChunk *Next = Chunk->Next.load(std::memory_order_acquire);
    if (!Next) {
      auto *Fresh = new ThreadStatsChunk();
      if (Chunk->Next.compare_exchange_strong(Next, Fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        Next = Fresh;
      } else {
        // Another ingesting thread published a chunk first; use theirs.
        delete Fresh;
      }
    }
    Chunk = Next;
  }
}

bool CacheLineInfo::recordAccess(ThreadId Tid, AccessKind Kind,
                                 uint64_t WordIndex, uint64_t WordSpan,
                                 uint64_t LatencyCycles) {
  CHEETAH_ASSERT(WordIndex < WordCount, "word index outside line");
  CHEETAH_ASSERT(WordSpan >= 1, "access must cover at least one word");

  bool Invalidation = Table.recordAccess(Tid, Kind);
  if (Invalidation)
    Invalidations.fetch_add(1, std::memory_order_relaxed);

  Accesses.fetch_add(1, std::memory_order_relaxed);
  if (Kind == AccessKind::Write)
    Writes.fetch_add(1, std::memory_order_relaxed);
  Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);

  // An access wider than a word (e.g. a 64-bit store) marks every covered
  // word; latency attributes to the first word to avoid double counting.
  uint64_t End = std::min<uint64_t>(WordIndex + WordSpan, WordCount);
  for (uint64_t W = WordIndex; W < End; ++W)
    Words[W].record(Tid, Kind, W == WordIndex ? LatencyCycles : 0);

  recordThread(Tid, LatencyCycles);
  return Invalidation;
}

std::vector<WordStats> CacheLineInfo::words() const {
  std::vector<WordStats> Result;
  Result.reserve(WordCount);
  for (uint64_t W = 0; W < WordCount; ++W)
    Result.push_back(Words[W].snapshot());
  return Result;
}

std::vector<ThreadLineStats> CacheLineInfo::threads() const {
  std::vector<ThreadLineStats> Result;
  for (const ThreadStatsChunk *Chunk = &FirstThreads; Chunk;
       Chunk = Chunk->Next.load(std::memory_order_acquire)) {
    for (size_t I = 0; I < ThreadStatsChunk::Capacity; ++I) {
      ThreadId Tid = Chunk->Tids[I].load(std::memory_order_relaxed);
      if (Tid == NoThread)
        continue;
      Result.push_back(
          {Tid, Chunk->Accesses[I].load(std::memory_order_relaxed),
           Chunk->Cycles[I].load(std::memory_order_relaxed)});
    }
  }
  std::sort(Result.begin(), Result.end(),
            [](const ThreadLineStats &A, const ThreadLineStats &B) {
              return A.Tid < B.Tid;
            });
  return Result;
}

size_t CacheLineInfo::threadCount() const {
  size_t Count = 0;
  for (const ThreadStatsChunk *Chunk = &FirstThreads; Chunk;
       Chunk = Chunk->Next.load(std::memory_order_acquire))
    for (size_t I = 0; I < ThreadStatsChunk::Capacity; ++I)
      if (Chunk->Tids[I].load(std::memory_order_relaxed) != NoThread)
        ++Count;
  return Count;
}

size_t CacheLineInfo::footprintBytes() const {
  size_t Bytes = sizeof(CacheLineInfo) +
                 WordCount * sizeof(AtomicWordStats);
  for (const ThreadStatsChunk *Chunk =
           FirstThreads.Next.load(std::memory_order_acquire);
       Chunk; Chunk = Chunk->Next.load(std::memory_order_acquire))
    Bytes += sizeof(ThreadStatsChunk);
  return Bytes;
}
