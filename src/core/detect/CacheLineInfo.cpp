//===- core/detect/CacheLineInfo.cpp - Per-line detailed tracking --------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/CacheLineInfo.h"

#include "support/Assert.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

ThreadStatsChain::Chunk::Chunk() {
  for (size_t I = 0; I < Capacity; ++I) {
    Tids[I].store(NoThread, std::memory_order_relaxed);
    Accesses[I].store(0, std::memory_order_relaxed);
    Cycles[I].store(0, std::memory_order_relaxed);
  }
}

ThreadStatsChain::~ThreadStatsChain() {
  Chunk *Node = First.Next.load(std::memory_order_acquire);
  while (Node) {
    Chunk *Next = Node->Next.load(std::memory_order_acquire);
    delete Node;
    Node = Next;
  }
}

void ThreadStatsChain::record(ThreadId Tid, uint64_t LatencyCycles) {
  Chunk *Node = &First;
  for (;;) {
    for (size_t I = 0; I < Chunk::Capacity; ++I) {
      ThreadId Slot = Node->Tids[I].load(std::memory_order_relaxed);
      if (Slot == NoThread &&
          Node->Tids[I].compare_exchange_strong(Slot, Tid,
                                                std::memory_order_relaxed))
        Slot = Tid;
      // On CAS failure `Slot` holds the claiming thread's id, which may
      // still be ours if another ingester raced the same sample tid.
      if (Slot == Tid) {
        Node->Accesses[I].fetch_add(1, std::memory_order_relaxed);
        Node->Cycles[I].fetch_add(LatencyCycles, std::memory_order_relaxed);
        return;
      }
    }
    Chunk *Next = Node->Next.load(std::memory_order_acquire);
    if (!Next) {
      auto *Fresh = new Chunk();
      if (Node->Next.compare_exchange_strong(Next, Fresh,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        Next = Fresh;
      } else {
        // Another ingesting thread published a chunk first; use theirs.
        delete Fresh;
      }
    }
    Node = Next;
  }
}

std::vector<ThreadLineStats> ThreadStatsChain::snapshot() const {
  std::vector<ThreadLineStats> Result;
  for (const Chunk *Node = &First; Node;
       Node = Node->Next.load(std::memory_order_acquire)) {
    for (size_t I = 0; I < Chunk::Capacity; ++I) {
      ThreadId Tid = Node->Tids[I].load(std::memory_order_relaxed);
      if (Tid == NoThread)
        continue;
      Result.push_back(
          {Tid, Node->Accesses[I].load(std::memory_order_relaxed),
           Node->Cycles[I].load(std::memory_order_relaxed)});
    }
  }
  std::sort(Result.begin(), Result.end(),
            [](const ThreadLineStats &A, const ThreadLineStats &B) {
              return A.Tid < B.Tid;
            });
  return Result;
}

size_t ThreadStatsChain::distinctThreads() const {
  size_t Count = 0;
  for (const Chunk *Node = &First; Node;
       Node = Node->Next.load(std::memory_order_acquire))
    for (size_t I = 0; I < Chunk::Capacity; ++I)
      if (Node->Tids[I].load(std::memory_order_relaxed) != NoThread)
        ++Count;
  return Count;
}

size_t ThreadStatsChain::overflowBytes() const {
  size_t Bytes = 0;
  for (const Chunk *Node = First.Next.load(std::memory_order_acquire); Node;
       Node = Node->Next.load(std::memory_order_acquire))
    Bytes += sizeof(Chunk);
  return Bytes;
}

CacheLineInfo::CacheLineInfo(uint64_t WordsPerLine)
    : Words(std::make_unique<AtomicWordStats[]>(WordsPerLine)),
      WordCount(WordsPerLine) {}

CacheLineInfo::~CacheLineInfo() = default;

void CacheLineInfo::AtomicWordStats::record(ThreadId Tid, AccessKind Kind,
                                            uint64_t LatencyCycles) {
  if (Kind == AccessKind::Read)
    Reads.fetch_add(1, std::memory_order_relaxed);
  else
    Writes.fetch_add(1, std::memory_order_relaxed);
  if (LatencyCycles)
    Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
  ThreadId First = FirstThread.load(std::memory_order_relaxed);
  if (First == NoThread &&
      FirstThread.compare_exchange_strong(First, Tid,
                                          std::memory_order_relaxed))
    First = Tid;
  // On CAS failure `First` holds the thread that won the publication race.
  if (First != Tid)
    MultiThread.store(true, std::memory_order_relaxed);
}

WordStats CacheLineInfo::AtomicWordStats::snapshot() const {
  WordStats Result;
  Result.Reads = Reads.load(std::memory_order_relaxed);
  Result.Writes = Writes.load(std::memory_order_relaxed);
  Result.Cycles = Cycles.load(std::memory_order_relaxed);
  Result.FirstThread = FirstThread.load(std::memory_order_relaxed);
  Result.MultiThread = MultiThread.load(std::memory_order_relaxed);
  return Result;
}

bool CacheLineInfo::recordAccess(ThreadId Tid, AccessKind Kind,
                                 uint64_t WordIndex, uint64_t WordSpan,
                                 uint64_t LatencyCycles) {
  CHEETAH_ASSERT(WordIndex < WordCount, "word index outside line");
  CHEETAH_ASSERT(WordSpan >= 1, "access must cover at least one word");

  bool Invalidation = Table.recordAccess(Tid, Kind);
  if (Invalidation)
    Invalidations.fetch_add(1, std::memory_order_relaxed);

  Accesses.fetch_add(1, std::memory_order_relaxed);
  if (Kind == AccessKind::Write)
    Writes.fetch_add(1, std::memory_order_relaxed);
  Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);

  // An access wider than a word (e.g. a 64-bit store) marks every covered
  // word; latency attributes to the first word to avoid double counting.
  uint64_t End = std::min<uint64_t>(WordIndex + WordSpan, WordCount);
  for (uint64_t W = WordIndex; W < End; ++W)
    Words[W].record(Tid, Kind, W == WordIndex ? LatencyCycles : 0);

  ThreadStats.record(Tid, LatencyCycles);
  return Invalidation;
}

std::vector<WordStats> CacheLineInfo::words() const {
  std::vector<WordStats> Result;
  Result.reserve(WordCount);
  for (uint64_t W = 0; W < WordCount; ++W)
    Result.push_back(Words[W].snapshot());
  return Result;
}

std::vector<ThreadLineStats> CacheLineInfo::threads() const {
  return ThreadStats.snapshot();
}

size_t CacheLineInfo::threadCount() const {
  return ThreadStats.distinctThreads();
}

size_t CacheLineInfo::footprintBytes() const {
  return sizeof(CacheLineInfo) + WordCount * sizeof(AtomicWordStats) +
         ThreadStats.overflowBytes();
}
