//===- core/detect/CacheLineInfo.cpp - Per-line detailed tracking --------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/CacheLineInfo.h"

#include "support/Assert.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

ThreadLineStats &CacheLineInfo::threadStats(ThreadId Tid) {
  auto It = std::lower_bound(Threads.begin(), Threads.end(), Tid,
                             [](const ThreadLineStats &S, ThreadId T) {
                               return S.Tid < T;
                             });
  if (It != Threads.end() && It->Tid == Tid)
    return *It;
  return *Threads.insert(It, ThreadLineStats{Tid, 0, 0});
}

bool CacheLineInfo::recordAccess(ThreadId Tid, AccessKind Kind,
                                 uint64_t WordIndex, uint64_t WordSpan,
                                 uint64_t LatencyCycles) {
  CHEETAH_ASSERT(WordIndex < Words.size(), "word index outside line");
  CHEETAH_ASSERT(WordSpan >= 1, "access must cover at least one word");

  bool Invalidation = Table.recordAccess(Tid, Kind);
  if (Invalidation)
    ++Invalidations;

  ++Accesses;
  if (Kind == AccessKind::Write)
    ++Writes;
  Cycles += LatencyCycles;

  // An access wider than a word (e.g. a 64-bit store) marks every covered
  // word; latency attributes to the first word to avoid double counting.
  uint64_t End = std::min<uint64_t>(WordIndex + WordSpan, Words.size());
  for (uint64_t W = WordIndex; W < End; ++W)
    Words[W].record(Tid, Kind, W == WordIndex ? LatencyCycles : 0);

  ThreadLineStats &Stats = threadStats(Tid);
  ++Stats.Accesses;
  Stats.Cycles += LatencyCycles;
  return Invalidation;
}
