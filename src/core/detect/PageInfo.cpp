//===- core/detect/PageInfo.cpp - Per-page detailed tracking --------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/PageInfo.h"

#include "support/Assert.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

PageInfo::PageInfo(uint64_t LinesPerPage)
    : Lines(std::make_unique<AtomicLineStats[]>(LinesPerPage)),
      LineCount(LinesPerPage) {
  for (uint32_t N = 0; N < NumaTopology::MaxNodes; ++N) {
    NodeAccesses[N].store(0, std::memory_order_relaxed);
    NodeWrites[N].store(0, std::memory_order_relaxed);
    NodeCycles[N].store(0, std::memory_order_relaxed);
  }
}

void PageInfo::AtomicLineStats::record(NodeId Node, AccessKind Kind,
                                       uint64_t LatencyCycles) {
  if (Kind == AccessKind::Read)
    Reads.fetch_add(1, std::memory_order_relaxed);
  else
    Writes.fetch_add(1, std::memory_order_relaxed);
  if (LatencyCycles)
    Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
  NodeId First = FirstNode.load(std::memory_order_relaxed);
  if (First == NoNode &&
      FirstNode.compare_exchange_strong(First, Node,
                                        std::memory_order_relaxed))
    First = Node;
  // On CAS failure `First` holds the node that won the publication race.
  if (First != Node)
    MultiNode.store(true, std::memory_order_relaxed);
}

WordStats PageInfo::AtomicLineStats::snapshot() const {
  WordStats Result;
  Result.Reads = Reads.load(std::memory_order_relaxed);
  Result.Writes = Writes.load(std::memory_order_relaxed);
  Result.Cycles = Cycles.load(std::memory_order_relaxed);
  Result.FirstThread = FirstNode.load(std::memory_order_relaxed);
  Result.MultiThread = MultiNode.load(std::memory_order_relaxed);
  return Result;
}

void PageInfo::bucketRemote(uint32_t Distance, uint64_t LatencyCycles) {
  for (AtomicDistanceStats &Slot : DistanceSlots) {
    uint32_t Current = Slot.Distance.load(std::memory_order_relaxed);
    if (Current == 0 &&
        Slot.Distance.compare_exchange_strong(Current, Distance,
                                              std::memory_order_relaxed))
      Current = Distance;
    // On CAS failure `Current` holds the distance that won the slot.
    if (Current != Distance)
      continue;
    Slot.Accesses.fetch_add(1, std::memory_order_relaxed);
    if (LatencyCycles)
      Slot.Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
    return;
  }
  // A settled home yields at most MaxNodes - 1 distinct distances, so the
  // array cannot fill through the detector. Direct API misuse with more
  // distances than nodes folds into the last slot: the per-bucket split
  // degrades but the accesses/cycles conservation against remoteAccesses()
  // survives.
  DistanceSlots[NumaTopology::MaxNodes - 1].Accesses.fetch_add(
      1, std::memory_order_relaxed);
  if (LatencyCycles)
    DistanceSlots[NumaTopology::MaxNodes - 1].Cycles.fetch_add(
        LatencyCycles, std::memory_order_relaxed);
}

std::vector<RemoteDistanceStats> PageInfo::remoteByDistance() const {
  std::vector<RemoteDistanceStats> Result;
  for (const AtomicDistanceStats &Slot : DistanceSlots) {
    RemoteDistanceStats Stats;
    Stats.Distance = Slot.Distance.load(std::memory_order_relaxed);
    Stats.Accesses = Slot.Accesses.load(std::memory_order_relaxed);
    Stats.Cycles = Slot.Cycles.load(std::memory_order_relaxed);
    if (Stats.Accesses == 0)
      continue;
    Result.push_back(Stats);
  }
  std::sort(Result.begin(), Result.end(),
            [](const RemoteDistanceStats &A, const RemoteDistanceStats &B) {
              return A.Distance < B.Distance;
            });
  return Result;
}

bool PageInfo::recordAccess(ThreadId Tid, NodeId Node, AccessKind Kind,
                            uint64_t LineIndex, uint64_t LatencyCycles,
                            bool Remote, uint32_t Distance) {
  CHEETAH_ASSERT(LineIndex < LineCount, "line index outside page");
  CHEETAH_ASSERT(Node < NumaTopology::MaxNodes, "node id out of range");

  // The cross-node invalidation decision is the paper's two-entry rule with
  // nodes as the actors: a write from node N to a page recently touched by
  // another node flushes the table and counts remote-DRAM traffic.
  bool Invalidation = Table.recordAccess(Node, Kind);
  if (Invalidation)
    Invalidations.fetch_add(1, std::memory_order_relaxed);

  Accesses.fetch_add(1, std::memory_order_relaxed);
  if (Kind == AccessKind::Write)
    Writes.fetch_add(1, std::memory_order_relaxed);
  Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
  if (Remote) {
    RemoteAccesses.fetch_add(1, std::memory_order_relaxed);
    RemoteCycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
    // Every remote sample lands in a bucket so the breakdown always
    // conserves against RemoteAccesses. Validated topologies hand in
    // distances >= 1; a caller passing 0 (no distance information) folds
    // into the default remote distance.
    bucketRemote(Distance ? Distance : NumaTopology::DefaultRemoteDistance,
                 LatencyCycles);
  }

  Lines[LineIndex].record(Node, Kind, LatencyCycles);

  NodeAccesses[Node].fetch_add(1, std::memory_order_relaxed);
  if (Kind == AccessKind::Write)
    NodeWrites[Node].fetch_add(1, std::memory_order_relaxed);
  NodeCycles[Node].fetch_add(LatencyCycles, std::memory_order_relaxed);

  ThreadStats.record(Tid, LatencyCycles);
  return Invalidation;
}

std::vector<ThreadLineStats> PageInfo::threads() const {
  return ThreadStats.snapshot();
}

std::vector<WordStats> PageInfo::lines() const {
  std::vector<WordStats> Result;
  Result.reserve(LineCount);
  for (uint64_t L = 0; L < LineCount; ++L)
    Result.push_back(Lines[L].snapshot());
  return Result;
}

std::vector<NodePageStats> PageInfo::nodes() const {
  std::vector<NodePageStats> Result;
  for (uint32_t N = 0; N < NumaTopology::MaxNodes; ++N) {
    uint64_t NodeTotal = NodeAccesses[N].load(std::memory_order_relaxed);
    if (NodeTotal == 0)
      continue;
    Result.push_back({N, NodeTotal,
                      NodeWrites[N].load(std::memory_order_relaxed),
                      NodeCycles[N].load(std::memory_order_relaxed)});
  }
  return Result;
}

size_t PageInfo::nodeCount() const {
  size_t Count = 0;
  for (uint32_t N = 0; N < NumaTopology::MaxNodes; ++N)
    if (NodeAccesses[N].load(std::memory_order_relaxed))
      ++Count;
  return Count;
}

size_t PageInfo::footprintBytes() const {
  return sizeof(PageInfo) + LineCount * sizeof(AtomicLineStats) +
         ThreadStats.overflowBytes();
}
