//===- core/detect/PageTable.h - Address-to-page metadata -------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The page-granularity sibling of ShadowMemory: the same generic
/// GrainTable instantiated one level up the hierarchy, with first-touch
/// home tracking enabled — homes are CAS-published once by whichever
/// access touches the page first, serial or parallel, mirroring the OS
/// first-touch placement policy the remote-DRAM story depends on. See
/// GrainTable.h for the shared machinery.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_PAGETABLE_H
#define CHEETAH_CORE_DETECT_PAGETABLE_H

#include "core/detect/GrainTable.h"
#include "core/detect/PageInfo.h"
#include "core/detect/ShadowMemory.h"
#include "mem/CacheGeometry.h"
#include "mem/NumaTopology.h"

namespace cheetah {
namespace core {

/// Flat-array page metadata over a set of monitored regions.
class PageTable : public GrainTable<PageInfo, /*TrackHomes=*/true> {
public:
  /// \p Topology provides the page geometry; \p Geometry the line size used
  /// to index the per-line histogram within each page.
  PageTable(const NumaTopology &Topology, const CacheGeometry &Geometry,
            std::vector<ShadowRegion> Regions)
      : GrainTable(Topology.pageShift(),
                   Topology.pageSize() >> Geometry.lineShift(),
                   std::move(Regions), "empty page-table region",
                   "page-table region must be page-aligned"),
        Topology(Topology), Geometry(Geometry) {
    CHEETAH_ASSERT(Geometry.lineSize() <= Topology.pageSize(),
                   "cache lines must fit inside pages");
  }

#if CHEETAH_LOCKED_TABLE
  /// Striped lock serializing mutation of \p Address's page detail —
  /// the locked A/B build only.
  std::mutex &pageLock(uint64_t Address) { return grainLock(Address); }
#endif

  /// First byte address of the page containing \p Address.
  uint64_t pageBase(uint64_t Address) const {
    return Topology.pageBase(Address);
  }

  /// Index of the cache line within \p Address's page.
  uint64_t lineIndexInPage(uint64_t Address) const {
    return Topology.offsetInPage(Address) >> Geometry.lineShift();
  }

  /// Cache lines per page.
  uint64_t linesPerPage() const {
    return Topology.pageSize() >> Geometry.lineShift();
  }

  /// Invokes \p Fn(pageBaseAddress, homeNode, info) for every materialized
  /// page.
  template <typename Function> void forEachPage(Function Fn) const {
    forEachGrain([&Fn](uint64_t Base, NodeId Home, const PageInfo &Info) {
      Fn(Base, Home, Info);
    });
  }

  /// Number of pages with materialized detail (O(1) counter).
  size_t materializedPages() const { return materializedGrains(); }

  /// Bytes of page-table metadata currently allocated: the flat per-page
  /// arrays plus every materialized PageInfo's exact footprint.
  size_t pageBytes() const { return metadataBytes(); }

  const NumaTopology &topology() const { return Topology; }

private:
  NumaTopology Topology;
  CacheGeometry Geometry;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_PAGETABLE_H
