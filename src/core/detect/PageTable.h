//===- core/detect/PageTable.h - Address-to-page metadata -------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The page-granularity sibling of ShadowMemory: constant-time mapping from
/// an address to its page's metadata via bit shifting over the same
/// monitored heap/global regions. Per page it keeps
///
///  - a stage-1 write counter (susceptibility filter, exactly the per-line
///    write counter one level up),
///  - the first-touch *home node* — CAS-published once by whichever access
///    touches the page first, serial or parallel, mirroring the OS
///    first-touch placement policy the remote-DRAM story depends on,
///  - a lazily materialized PageInfo pointer for susceptible pages.
///
/// All of it is lock-free in the default build: counters are relaxed
/// atomics, homes and details are CAS-published (losing allocators delete
/// their copy). Building with -DCHEETAH_LOCKED_TABLE=ON adds striped page
/// mutexes so the locked-vs-lock-free A/B sweep covers the page path the
/// same way it covers the line path.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_PAGETABLE_H
#define CHEETAH_CORE_DETECT_PAGETABLE_H

#include "core/detect/PageInfo.h"
#include "core/detect/ShadowMemory.h"
#include "mem/CacheGeometry.h"
#include "mem/NumaTopology.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#if CHEETAH_LOCKED_TABLE
#include <array>
#include <mutex>
#endif

namespace cheetah {
namespace core {

/// Flat-array page metadata over a set of monitored regions.
class PageTable {
public:
  /// \p Topology provides the page geometry; \p Geometry the line size used
  /// to index the per-line histogram within each page.
  PageTable(const NumaTopology &Topology, const CacheGeometry &Geometry,
            std::vector<ShadowRegion> Regions);
  ~PageTable();

  PageTable(const PageTable &) = delete;
  PageTable &operator=(const PageTable &) = delete;

  /// \returns true if \p Address falls inside a monitored region.
  bool covers(uint64_t Address) const;

  /// Atomically increments the write counter of \p Address's page.
  /// \returns the new count. \p Address must be covered.
  uint32_t noteWrite(uint64_t Address);

  /// Current write count of \p Address's page (0 if never written).
  uint32_t writeCount(uint64_t Address) const;

  /// Records a touch by \p Node: publishes it as the page's first-touch
  /// home if the page was untouched, and returns the (now settled) home.
  /// Called on every covered sample regardless of phase — homes are a
  /// placement property, not a sharing observation.
  NodeId noteTouch(uint64_t Address, NodeId Node);

  /// The page's first-touch home node, or NoNode if never touched.
  NodeId homeNode(uint64_t Address) const;

  /// \returns the detailed info for \p Address's page, or nullptr if never
  /// materialized. \p Address must be covered.
  PageInfo *detail(uint64_t Address);
  const PageInfo *detail(uint64_t Address) const;

  /// Materializes (if needed) and returns the detailed info for the page.
  /// Safe to race: exactly one allocation wins publication.
  PageInfo &materializeDetail(uint64_t Address);

#if CHEETAH_LOCKED_TABLE
  /// Striped lock serializing mutation of \p Address's page detail — the
  /// locked A/B build only; the default ingestion path is lock-free and
  /// this member is compiled out.
  std::mutex &pageLock(uint64_t Address);
#endif

  /// First byte address of the page containing \p Address.
  uint64_t pageBase(uint64_t Address) const {
    return Topology.pageBase(Address);
  }

  /// Index of the cache line within \p Address's page.
  uint64_t lineIndexInPage(uint64_t Address) const {
    return Topology.offsetInPage(Address) >> Geometry.lineShift();
  }

  /// Cache lines per page.
  uint64_t linesPerPage() const {
    return Topology.pageSize() >> Geometry.lineShift();
  }

  /// Invokes \p Fn(pageBaseAddress, homeNode, info) for every materialized
  /// page.
  template <typename Function> void forEachPage(Function Fn) const {
    for (const Slab &Region : Slabs)
      for (size_t I = 0; I < Region.Pages; ++I)
        if (const PageInfo *Info =
                Region.Details[I].load(std::memory_order_acquire))
          Fn(Region.Base + (static_cast<uint64_t>(I) << Topology.pageShift()),
             Region.Homes[I].load(std::memory_order_relaxed), *Info);
  }

  /// Number of pages with materialized detail (O(1) counter).
  size_t materializedPages() const {
    return MaterializedCount.load(std::memory_order_relaxed);
  }

  /// Bytes of page-table metadata currently allocated: the flat per-page
  /// arrays plus every materialized PageInfo's exact footprint.
  size_t pageBytes() const;

  const NumaTopology &topology() const { return Topology; }

private:
  struct Slab {
    uint64_t Base = 0;
    uint64_t Size = 0;
    size_t Pages = 0;
    std::unique_ptr<std::atomic<uint32_t>[]> WriteCounts; // one per page
    std::unique_ptr<std::atomic<NodeId>[]> Homes;         // first-touch node
    std::unique_ptr<std::atomic<PageInfo *>[]> Details;   // one per page
  };

  const Slab *slabFor(uint64_t Address) const;
  Slab *slabFor(uint64_t Address);
  size_t pageIndexIn(const Slab &Region, uint64_t Address) const;

  NumaTopology Topology;
  CacheGeometry Geometry;
  std::vector<Slab> Slabs;
#if CHEETAH_LOCKED_TABLE
  static constexpr size_t LockStripeCount = 64;
  std::array<std::mutex, LockStripeCount> LockStripes;
#endif
  std::atomic<size_t> MaterializedCount{0};
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_PAGETABLE_H
