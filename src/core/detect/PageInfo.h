//===- core/detect/PageInfo.h - Per-page detailed tracking ------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detailed per-page state for NUMA (remote-DRAM) sharing detection — the
/// paper's two-entry-table + per-word-histogram design lifted one level up
/// the memory hierarchy. The actors become NUMA *nodes* instead of threads
/// and the histogram buckets become the page's *cache lines* instead of
/// 4-byte words, but the machinery is identical:
///
///  - The packed-atomic-word CAS state machine from CacheLineTable.h is
///    reused verbatim with node ids as the stored "thread" ids. A write
///    from one node to a page recently touched by another node is a
///    cross-node invalidation — the remote-DRAM traffic signature, the way
///    a cache invalidation is the false-sharing signature.
///  - The per-line histogram distinguishes *false page sharing* (nodes
///    touch disjoint lines of the page: fixable by page-aligned placement
///    or node-local allocation) from *true page sharing* (nodes touch the
///    same lines: genuine communication). SharingClassifier consumes these
///    snapshots unchanged.
///  - Per-node accumulators feed the remote-traffic accounting; node
///    populations are tiny (NumaTopology::MaxNodes) so they live in fixed
///    arrays rather than CacheLineInfo's chunk chain.
///
/// Like CacheLineInfo, every mutable field is a relaxed atomic and the
/// table transition is a single-word CAS, so recordAccess is lock-free from
/// any number of ingesting threads.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_PAGEINFO_H
#define CHEETAH_CORE_DETECT_PAGEINFO_H

#include "core/detect/CacheLineInfo.h"
#include "core/detect/CacheLineTable.h"
#include "mem/NumaTopology.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cheetah {
namespace core {

/// Per-node access/cycle accumulator on one page.
struct NodePageStats {
  NodeId Node = 0;
  uint64_t Accesses = 0;
  uint64_t Writes = 0;
  uint64_t Cycles = 0;
};

/// Everything Cheetah tracks about one susceptible page.
class PageInfo {
public:
  explicit PageInfo(uint64_t LinesPerPage);

  PageInfo(const PageInfo &) = delete;
  PageInfo &operator=(const PageInfo &) = delete;

  /// Records one sampled access landing on this page. Lock-free; safe from
  /// any number of ingesting threads.
  /// \param Tid the accessing thread (feeds the per-thread EQ.2 breakdown).
  /// \param Node the accessing thread's NUMA node.
  /// \param LineIndex index of the touched cache line within the page.
  /// \param Remote true when \p Node differs from the page's home node.
  /// \param Distance the node-pair distance the access crossed (accessor
  /// node to page home); 0 for local accesses. Remote samples are
  /// additionally bucketed per distinct distance — the remoteByDistance
  /// evidence the v4 report schema and the distance-weighted assessment
  /// consume.
  /// \returns true if the access incurred a cross-node invalidation.
  bool recordAccess(ThreadId Tid, NodeId Node, AccessKind Kind,
                    uint64_t LineIndex, uint64_t LatencyCycles, bool Remote,
                    uint32_t Distance = 0);

  /// Cross-node invalidation count (the page-sharing significance signal).
  uint64_t invalidations() const {
    return Invalidations.load(std::memory_order_relaxed);
  }

  /// Total sampled accesses / writes / cycles on the page.
  uint64_t accesses() const {
    return Accesses.load(std::memory_order_relaxed);
  }
  uint64_t writes() const { return Writes.load(std::memory_order_relaxed); }
  uint64_t cycles() const { return Cycles.load(std::memory_order_relaxed); }

  /// Sampled accesses issued from a node other than the page's home, and
  /// the latency cycles they accumulated (remote-DRAM traffic).
  uint64_t remoteAccesses() const {
    return RemoteAccesses.load(std::memory_order_relaxed);
  }
  uint64_t remoteCycles() const {
    return RemoteCycles.load(std::memory_order_relaxed);
  }

  /// Value snapshot of the per-line statistics, one entry per cache line of
  /// the page. Reuses WordStats with node ids in the thread fields
  /// (FirstThread = first node, MultiThread = multi-node) so
  /// SharingClassifier applies unchanged at page granularity.
  std::vector<WordStats> lines() const;

  /// Value snapshot of the per-node accumulators, ordered by node id.
  std::vector<NodePageStats> nodes() const;

  /// Value snapshot of the remote traffic bucketed by crossed node-pair
  /// distance, ordered by distance. With a settled home the bucket
  /// accesses sum exactly to remoteAccesses() and the cycles to
  /// remoteCycles().
  std::vector<RemoteDistanceStats> remoteByDistance() const;

  /// Value snapshot of the per-thread accumulators, ordered by thread id —
  /// the page-granularity Accesses_O(t) / Cycles_O(t) evidence EQ.2 needs.
  std::vector<ThreadLineStats> threads() const;

  /// Number of distinct nodes that accessed the page.
  size_t nodeCount() const;

  /// Access to the cross-node invalidation table (tests). This is the
  /// packed single-word CAS state machine from CacheLineTable.h, storing
  /// node ids.
  const CacheLineTable &table() const { return Table; }

  /// Exact bytes of heap memory behind this page's detailed tracking.
  size_t footprintBytes() const;

private:
  /// Atomic backing store for one line's statistics (the per-word histogram
  /// shape, at line granularity with node actors).
  struct AtomicLineStats {
    std::atomic<uint64_t> Reads{0};
    std::atomic<uint64_t> Writes{0};
    std::atomic<uint64_t> Cycles{0};
    std::atomic<NodeId> FirstNode{NoNode};
    std::atomic<bool> MultiNode{false};

    void record(NodeId Node, AccessKind Kind, uint64_t LatencyCycles);
    WordStats snapshot() const;
  };

  /// One lock-free distance bucket: claimed by CAS-publishing its distance
  /// value (0 = empty; validated remote distances are >= 1). A page's home
  /// is settled at first touch, so at most MaxNodes - 1 distinct distances
  /// ever occur and the fixed array never fills.
  struct AtomicDistanceStats {
    std::atomic<uint32_t> Distance{0};
    std::atomic<uint64_t> Accesses{0};
    std::atomic<uint64_t> Cycles{0};
  };

  /// Adds one remote sample to its distance bucket (lock-free).
  void bucketRemote(uint32_t Distance, uint64_t LatencyCycles);

  CacheLineTable Table; // node-granularity reuse of the packed CAS table
  std::atomic<uint64_t> Invalidations{0};
  std::atomic<uint64_t> Accesses{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> Cycles{0};
  std::atomic<uint64_t> RemoteAccesses{0};
  std::atomic<uint64_t> RemoteCycles{0};
  std::unique_ptr<AtomicLineStats[]> Lines;
  uint64_t LineCount;
  /// Fixed per-node accumulators; node ids are bounded by
  /// NumaTopology::MaxNodes.
  std::atomic<uint64_t> NodeAccesses[NumaTopology::MaxNodes];
  std::atomic<uint64_t> NodeWrites[NumaTopology::MaxNodes];
  std::atomic<uint64_t> NodeCycles[NumaTopology::MaxNodes];
  /// Remote traffic bucketed by crossed node-pair distance.
  AtomicDistanceStats DistanceSlots[NumaTopology::MaxNodes];
  /// Per-thread accumulators (same lock-free chain as CacheLineInfo).
  ThreadStatsChain ThreadStats;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_PAGEINFO_H
