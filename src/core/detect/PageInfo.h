//===- core/detect/PageInfo.h - Per-page detailed tracking ------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detailed per-page state for NUMA (remote-DRAM) sharing detection — the
/// paper's two-entry-table + per-word-histogram design lifted one level up
/// the memory hierarchy, expressed as a thin instantiation of the
/// granularity-generic GrainInfo:
///
///  - The actors become NUMA *nodes* instead of threads: a write from one
///    node to a page recently touched by another node is a cross-node
///    invalidation — the remote-DRAM traffic signature, the way a cache
///    invalidation is the false-sharing signature.
///  - The histogram buckets become the page's *cache lines* instead of
///    4-byte words, distinguishing *false page sharing* (nodes touch
///    disjoint lines: fixable by page-aligned placement or node-local
///    allocation) from *true page sharing* (genuine communication).
///    SharingClassifier consumes the snapshots unchanged.
///  - The page-grain extras add remote-traffic totals, per-node
///    accumulators, and the remoteByDistance buckets the v4 report schema
///    and the distance-weighted assessment consume.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_PAGEINFO_H
#define CHEETAH_CORE_DETECT_PAGEINFO_H

#include "core/detect/GrainInfo.h"

namespace cheetah {
namespace core {

/// Page-grain NUMA evidence beyond the generic GrainSnapshot — what
/// PageReportBuilder consumes next to the common finding source.
struct PageNumaEvidence {
  uint64_t RemoteAccesses = 0;
  uint64_t RemoteCycles = 0;
  std::vector<RemoteDistanceStats> RemoteByDistance;
  std::vector<NodePageStats> Nodes;
  size_t NodesObserved = 0;
};

/// Everything Cheetah tracks about one susceptible page.
class PageInfo : public GrainInfo<PageGrainTraits> {
public:
  explicit PageInfo(uint64_t LinesPerPage) : GrainInfo(LinesPerPage) {}

  /// Records one sampled access landing on this page. Lock-free; safe from
  /// any number of ingesting threads.
  /// \param Tid the accessing thread (feeds the per-thread EQ.2 breakdown).
  /// \param Node the accessing thread's NUMA node.
  /// \param LineIndex index of the touched cache line within the page.
  /// \param Remote true when \p Node differs from the page's home node.
  /// \param Distance the node-pair distance the access crossed (accessor
  /// node to page home); 0 for local accesses. Remote samples are
  /// additionally bucketed per distinct distance — the remoteByDistance
  /// evidence the v4 report schema and the distance-weighted assessment
  /// consume.
  /// \returns true if the access incurred a cross-node invalidation.
  bool recordAccess(ThreadId Tid, NodeId Node, AccessKind Kind,
                    uint64_t LineIndex, uint64_t LatencyCycles, bool Remote,
                    uint32_t Distance = 0) {
    return record(Tid, Node, Kind, LineIndex, /*BucketSpan=*/1,
                  LatencyCycles, PageAccessContext{Remote, Distance});
  }

  /// Sampled accesses issued from a node other than the page's home, and
  /// the latency cycles they accumulated (remote-DRAM traffic).
  uint64_t remoteAccesses() const { return extras().remoteAccesses(); }
  uint64_t remoteCycles() const { return extras().remoteCycles(); }

  /// Value snapshot of the per-line statistics, one entry per cache line of
  /// the page. Reuses WordStats with node ids in the thread fields
  /// (FirstThread = first node, MultiThread = multi-node) so
  /// SharingClassifier applies unchanged at page granularity.
  std::vector<WordStats> lines() const { return buckets(); }

  /// Value snapshot of the per-node accumulators, ordered by node id.
  std::vector<NodePageStats> nodes() const { return extras().nodes(); }

  /// Value snapshot of the remote traffic bucketed by crossed node-pair
  /// distance, ordered by distance. With a settled home the bucket
  /// accesses sum exactly to remoteAccesses() and the cycles to
  /// remoteCycles().
  std::vector<RemoteDistanceStats> remoteByDistance() const {
    return extras().remoteByDistance();
  }

  /// Number of distinct nodes that accessed the page.
  size_t nodeCount() const { return extras().nodeCount(); }

  /// The page's NUMA evidence bundled for the report builder.
  PageNumaEvidence numaEvidence() const {
    PageNumaEvidence Result;
    Result.RemoteAccesses = remoteAccesses();
    Result.RemoteCycles = remoteCycles();
    Result.RemoteByDistance = remoteByDistance();
    Result.Nodes = nodes();
    Result.NodesObserved = nodeCount();
    return Result;
  }
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_PAGEINFO_H
