//===- core/detect/PageTable.cpp - Address-to-page metadata ---------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/PageTable.h"

#include "support/Assert.h"

#if CHEETAH_LOCKED_TABLE
#include <bit>
#endif

using namespace cheetah;
using namespace cheetah::core;

PageTable::PageTable(const NumaTopology &Topology,
                     const CacheGeometry &Geometry,
                     std::vector<ShadowRegion> Regions)
    : Topology(Topology), Geometry(Geometry) {
  CHEETAH_ASSERT(Geometry.lineSize() <= Topology.pageSize(),
                 "cache lines must fit inside pages");
  for (const ShadowRegion &Region : Regions) {
    CHEETAH_ASSERT(Region.Size > 0, "empty page-table region");
    CHEETAH_ASSERT((Region.Base & (Topology.pageSize() - 1)) == 0,
                   "page-table region must be page-aligned");
    Slab NewSlab;
    NewSlab.Base = Region.Base;
    NewSlab.Size = Region.Size;
    NewSlab.Pages = static_cast<size_t>(
        (Region.Size + Topology.pageSize() - 1) >> Topology.pageShift());
    NewSlab.WriteCounts =
        std::make_unique<std::atomic<uint32_t>[]>(NewSlab.Pages);
    NewSlab.Homes = std::make_unique<std::atomic<NodeId>[]>(NewSlab.Pages);
    NewSlab.Details =
        std::make_unique<std::atomic<PageInfo *>[]>(NewSlab.Pages);
    for (size_t I = 0; I < NewSlab.Pages; ++I) {
      NewSlab.WriteCounts[I].store(0, std::memory_order_relaxed);
      NewSlab.Homes[I].store(NoNode, std::memory_order_relaxed);
      NewSlab.Details[I].store(nullptr, std::memory_order_relaxed);
    }
    Slabs.push_back(std::move(NewSlab));
  }
}

PageTable::~PageTable() {
  for (Slab &Region : Slabs)
    for (size_t I = 0; I < Region.Pages; ++I)
      delete Region.Details[I].load(std::memory_order_relaxed);
}

const PageTable::Slab *PageTable::slabFor(uint64_t Address) const {
  for (const Slab &Region : Slabs)
    if (Address >= Region.Base && Address < Region.Base + Region.Size)
      return &Region;
  return nullptr;
}

PageTable::Slab *PageTable::slabFor(uint64_t Address) {
  return const_cast<Slab *>(
      static_cast<const PageTable *>(this)->slabFor(Address));
}

size_t PageTable::pageIndexIn(const Slab &Region, uint64_t Address) const {
  return static_cast<size_t>((Address - Region.Base) >> Topology.pageShift());
}

bool PageTable::covers(uint64_t Address) const {
  return slabFor(Address) != nullptr;
}

uint32_t PageTable::noteWrite(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "noteWrite outside monitored regions");
  return Region->WriteCounts[pageIndexIn(*Region, Address)].fetch_add(
             1, std::memory_order_relaxed) +
         1;
}

uint32_t PageTable::writeCount(uint64_t Address) const {
  const Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "writeCount outside monitored regions");
  return Region->WriteCounts[pageIndexIn(*Region, Address)].load(
      std::memory_order_relaxed);
}

NodeId PageTable::noteTouch(uint64_t Address, NodeId Node) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "noteTouch outside monitored regions");
  std::atomic<NodeId> &Home = Region->Homes[pageIndexIn(*Region, Address)];
  NodeId Current = Home.load(std::memory_order_relaxed);
  if (Current != NoNode)
    return Current;
  if (Home.compare_exchange_strong(Current, Node, std::memory_order_relaxed))
    return Node;
  // Another touch won first-touch publication; its node is the home.
  return Current;
}

NodeId PageTable::homeNode(uint64_t Address) const {
  const Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "homeNode outside monitored regions");
  return Region->Homes[pageIndexIn(*Region, Address)].load(
      std::memory_order_relaxed);
}

PageInfo *PageTable::detail(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "detail outside monitored regions");
  return Region->Details[pageIndexIn(*Region, Address)].load(
      std::memory_order_acquire);
}

const PageInfo *PageTable::detail(uint64_t Address) const {
  const Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "detail outside monitored regions");
  return Region->Details[pageIndexIn(*Region, Address)].load(
      std::memory_order_acquire);
}

PageInfo &PageTable::materializeDetail(uint64_t Address) {
  Slab *Region = slabFor(Address);
  CHEETAH_ASSERT(Region != nullptr, "materialize outside monitored regions");
  std::atomic<PageInfo *> &Slot =
      Region->Details[pageIndexIn(*Region, Address)];
  PageInfo *Existing = Slot.load(std::memory_order_acquire);
  if (Existing)
    return *Existing;
  auto *Fresh = new PageInfo(linesPerPage());
  if (Slot.compare_exchange_strong(Existing, Fresh, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    MaterializedCount.fetch_add(1, std::memory_order_relaxed);
    return *Fresh;
  }
  // Another ingesting thread won the race; use its published info.
  delete Fresh;
  return *Existing;
}

#if CHEETAH_LOCKED_TABLE
std::mutex &PageTable::pageLock(uint64_t Address) {
  static_assert((LockStripeCount & (LockStripeCount - 1)) == 0,
                "stripe count must be a power of two");
  constexpr unsigned Shift = 64 - std::bit_width(LockStripeCount - 1);
  uint64_t Page = Address >> Topology.pageShift();
  return LockStripes[(Page * 0x9e3779b97f4a7c15ull) >> Shift];
}
#endif

size_t PageTable::pageBytes() const {
  size_t Bytes = 0;
  for (const Slab &Region : Slabs) {
    Bytes += Region.Pages * sizeof(std::atomic<uint32_t>);
    Bytes += Region.Pages * sizeof(std::atomic<NodeId>);
    Bytes += Region.Pages * sizeof(std::atomic<PageInfo *>);
    for (size_t I = 0; I < Region.Pages; ++I)
      if (const PageInfo *Info =
              Region.Details[I].load(std::memory_order_acquire))
        Bytes += Info->footprintBytes();
  }
  return Bytes;
}
