//===- core/detect/Detector.h - FS detection over samples ------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "FS detection" module of Figure 2: consumes the PMU sample stream,
/// filters it to the monitored heap/global regions, and runs one identical
/// pipeline per active *grain stage* (line granularity, page granularity —
/// a future third grain slots in the same way): maintain the stage-1 write
/// counters, materialize detailed tracking for susceptible grains (write
/// count above threshold), decode the sample into the grain's actor/bucket
/// coordinates, and record it through the table's build-configured
/// ingestion mode. Detailed tracking is gated to parallel phases to avoid
/// reporting initialize-then-share objects as shared (Section 2.4).
///
/// handleSample is safe to call from many ingesting threads concurrently
/// and, in the default build, entirely lock-free. Building with
/// -DCHEETAH_LOCKED_TABLE=ON restores the PR-1 striped grain mutexes for
/// A/B benchmarking; -DCHEETAH_SHARDED_TABLE=ON routes detailed recording
/// into per-thread shards instead, which quiesce() folds back into the
/// shared tables — proving, in that build, that the merge conserved every
/// sample against the detector's own shared counters.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_DETECTOR_H
#define CHEETAH_CORE_DETECT_DETECTOR_H

#include "core/detect/BatchDecode.h"
#include "core/detect/PageTable.h"
#include "core/detect/ShadowMemory.h"
#include "mem/CacheGeometry.h"
#include "mem/NumaTopology.h"
#include "pmu/Sample.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cheetah {
namespace core {

/// Detection tunables.
struct DetectorConfig {
  /// Lines with at most this many sampled writes never get detailed
  /// tracking ("only tracks detailed information for cache lines with more
  /// than two writes").
  uint32_t WriteThreshold = 2;
  /// Record detailed accesses only while child threads are live.
  bool OnlyParallelPhases = true;
  /// Run the line-granularity (cache false sharing) stage.
  bool TrackLines = true;
  /// Run the page-granularity (NUMA / remote-DRAM sharing) stage; requires
  /// attachPageTable.
  bool TrackPages = false;
  /// Pages with at most this many sampled writes never get detailed page
  /// tracking (the stage-1 susceptibility filter, one level up).
  uint32_t PageWriteThreshold = 2;
  /// Byte budget for the line shadow table (0 = unbounded). When set, cold
  /// grains are evicted at epoch boundaries until footprintBytes() fits.
  size_t LineShadowBudgetBytes = 0;
  /// Byte budget for the page shadow table (0 = unbounded).
  size_t PageShadowBudgetBytes = 0;
};

/// Counters describing what the detector has seen.
struct DetectorStats {
  uint64_t SamplesSeen = 0;
  uint64_t SamplesFiltered = 0; // outside monitored regions
  uint64_t SamplesRecorded = 0; // reached detailed line tracking
  uint64_t Invalidations = 0;
  // Page-granularity stage (zero unless TrackPages).
  uint64_t PageSamplesRecorded = 0; // reached detailed page tracking
  uint64_t PageInvalidations = 0;   // cross-node invalidations
  uint64_t RemoteSamples = 0;       // recorded from a non-home node
};

/// One active grain stage's identity and end-of-run counters, enumerated
/// generically so drivers (banners, end-of-run stats) need no per-grain
/// edits when a stage is added. Tracked/Significant are filled by the
/// profiler once reports are built; the rest comes from the detector.
struct GrainStageSummary {
  std::string Name;               // "line", "page", ...
  uint64_t Tracked = 0;           // instances tracked by the report builder
  uint64_t Significant = 0;       // significant findings
  uint64_t SamplesRecorded = 0;   // reached detailed tracking
  uint64_t Invalidations = 0;     // stage invalidations
  uint64_t RemoteSamples = 0;     // remote-actor samples (HasRemote stages)
  bool HasRemote = false;         // stage distinguishes remote traffic
};

/// Sample-driven false-sharing detection state machine.
class Detector {
public:
  Detector(const CacheGeometry &Geometry, ShadowMemory &Shadow,
           const DetectorConfig &Config)
      : Geometry(Geometry), Shadow(Shadow), Config(Config),
        LineDecoder(Geometry, Shadow.regions()) {}

  /// Enables the page-granularity stage: samples additionally update
  /// \p PageTable, with thread ids mapped to NUMA nodes through
  /// \p Topology. Both must outlive the detector. Call before ingestion
  /// starts (not thread-safe against concurrent handleSample).
  void attachPageTable(PageTable &Table, const NumaTopology &T) {
    Pages = &Table;
    Topology = &T;
  }

  /// Processes one PMU sample. \p InParallelPhase reflects the phase
  /// tracker's state at delivery time. \p AccessBytes is the access width
  /// for word marking. Thread-safe.
  /// \returns true if the sample was recorded in detailed tracking (at
  /// either granularity).
  bool handleSample(const pmu::Sample &Sample, bool InParallelPhase,
                    uint8_t AccessBytes = 4);

  /// Processes \p Count samples through the staged, data-parallel batch
  /// pipeline — per grain stage: vector decode of the whole chunk
  /// (coverage + line coordinates via the runtime-dispatched SIMD kernel),
  /// a software-prefetched stage-1 write-counter sweep, a branchless
  /// susceptibility filter that keeps cold samples from ever dereferencing
  /// grain details, and a distance-pipelined lookup + record sweep over
  /// the survivors. Semantically identical to calling handleSample on each
  /// sample in order, and equally thread-safe — concurrent ingesters may
  /// deliver batches simultaneously.
  /// \returns the number of samples recorded in detailed tracking (at
  /// either granularity).
  size_t handleBatch(const pmu::Sample *Samples, size_t Count,
                     bool InParallelPhase, uint8_t AccessBytes = 4);

  /// The decode kernel the batch pipeline dispatches to (bench/tests).
  DecodeKernel decodeKernel() const { return LineDecoder.kernel(); }

  /// Epoch quiesce: folds every per-thread table shard back into the
  /// shared tables. Must not run concurrently with handleSample — the
  /// caller provides the happens-before edge (thread join / batch flush).
  /// A no-op source of work in unsharded builds (no shards ever register
  /// through the detector), and cheap either way.
  ///
  /// In the CHEETAH_SHARDED_TABLE build this also *proves conservation*:
  /// the cumulative merged totals must equal the detector's shared
  /// counters, or the merge lost samples and an assertion fires.
  void quiesce();

  /// Cumulative merge totals across every quiesce() so far (tests).
  const GrainMergeStats &lineMergeStats() const { return MergedLines; }
  const GrainMergeStats &pageMergeStats() const { return MergedPages; }

  /// Snapshot of the counters (consistent enough once ingestion quiesces).
  DetectorStats stats() const {
    DetectorStats Result;
    Result.SamplesSeen = SamplesSeen.load(std::memory_order_relaxed);
    Result.SamplesFiltered = SamplesFiltered.load(std::memory_order_relaxed);
    Result.SamplesRecorded = SamplesRecorded.load(std::memory_order_relaxed);
    Result.Invalidations = Invalidations.load(std::memory_order_relaxed);
    Result.PageSamplesRecorded =
        PageSamplesRecorded.load(std::memory_order_relaxed);
    Result.PageInvalidations =
        PageInvalidations.load(std::memory_order_relaxed);
    Result.RemoteSamples = RemoteSamples.load(std::memory_order_relaxed);
    return Result;
  }

  /// The active grain stages in pipeline order with their detection
  /// counters — the generic enumeration banners and end-of-run stats
  /// consume (Tracked/Significant are left for the profiler to fill).
  std::vector<GrainStageSummary> stageSummaries() const;

  /// The shadow memory the detector writes into.
  ShadowMemory &shadow() { return Shadow; }
  const ShadowMemory &shadow() const { return Shadow; }

  /// The attached page table (nullptr when page tracking is off).
  PageTable *pageTable() { return Pages; }
  const PageTable *pageTable() const { return Pages; }

private:
  struct LineStage;
  struct PageStage;

  /// One grain stage's pipeline over one covered sample: stage-1 write
  /// counting, stage-specific preparation (runs before the phase gate —
  /// e.g. first-touch home publication), the parallel-phase gate,
  /// susceptibility-thresholded materialization, sample decoding into
  /// actor/bucket coordinates, and the mode-dispatched record.
  /// \returns true if the sample reached detailed tracking.
  template <typename Stage>
  bool runGrainStage(Stage &S, const pmu::Sample &Sample,
                     bool InParallelPhase);

  /// The batched counterpart: one grain stage's pipeline over a decoded
  /// chunk (stage-1 counter sweep with prefetch, branchless filter,
  /// prefetched lookup and record sweeps). Marks recorded samples in
  /// \p Recorded and returns how many this stage recorded.
  template <typename Stage>
  size_t runGrainStageBatch(Stage &S, const pmu::Sample *Samples,
                            size_t Count, const uint8_t *Covered,
                            bool InParallelPhase, uint8_t *Recorded);

  CacheGeometry Geometry;
  ShadowMemory &Shadow;
  DetectorConfig Config;
  PageTable *Pages = nullptr;
  const NumaTopology *Topology = nullptr;
  std::atomic<uint64_t> SamplesSeen{0};
  std::atomic<uint64_t> SamplesFiltered{0};
  std::atomic<uint64_t> SamplesRecorded{0};
  std::atomic<uint64_t> Invalidations{0};
  std::atomic<uint64_t> PageSamplesRecorded{0};
  std::atomic<uint64_t> PageInvalidations{0};
  std::atomic<uint64_t> RemoteSamples{0};
  /// Cumulative quiesce() merge totals, per stage. Only quiesce() mutates
  /// these, under its single-caller contract.
  GrainMergeStats MergedLines;
  GrainMergeStats MergedPages;
  /// Vector decoder over the line geometry and the shadow regions (the
  /// page table's coverage is identical by the attach contract).
  BatchDecoder LineDecoder;
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_DETECTOR_H
