//===- core/detect/Detector.h - FS detection over samples ------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "FS detection" module of Figure 2: consumes the PMU sample stream,
/// filters it to the monitored heap/global regions, maintains the per-line
/// write counters, materializes detailed tracking for susceptible lines
/// (write count above threshold), and applies the two-entry invalidation
/// rule. Detailed tracking is gated to parallel phases to avoid reporting
/// initialize-then-share objects as shared (Section 2.4).
///
/// handleSample is safe to call from many ingesting threads concurrently
/// and, in the default build, entirely lock-free: the stage-1 write
/// counters are atomic, materialization races are resolved by the shadow
/// memory's CAS publication, stage-2 line mutation goes through the
/// single-word CAS table and relaxed atomic counters inside CacheLineInfo,
/// and the detector's own counters are relaxed atomics (stats() takes a
/// snapshot). Building with -DCHEETAH_LOCKED_TABLE=ON restores the PR-1
/// striped line mutexes for A/B benchmarking.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_CORE_DETECT_DETECTOR_H
#define CHEETAH_CORE_DETECT_DETECTOR_H

#include "core/detect/PageTable.h"
#include "core/detect/ShadowMemory.h"
#include "mem/CacheGeometry.h"
#include "mem/NumaTopology.h"
#include "pmu/Sample.h"

#include <atomic>
#include <cstdint>

namespace cheetah {
namespace core {

/// Detection tunables.
struct DetectorConfig {
  /// Lines with at most this many sampled writes never get detailed
  /// tracking ("only tracks detailed information for cache lines with more
  /// than two writes").
  uint32_t WriteThreshold = 2;
  /// Record detailed accesses only while child threads are live.
  bool OnlyParallelPhases = true;
  /// Run the line-granularity (cache false sharing) stage.
  bool TrackLines = true;
  /// Run the page-granularity (NUMA / remote-DRAM sharing) stage; requires
  /// attachPageTable.
  bool TrackPages = false;
  /// Pages with at most this many sampled writes never get detailed page
  /// tracking (the stage-1 susceptibility filter, one level up).
  uint32_t PageWriteThreshold = 2;
};

/// Counters describing what the detector has seen.
struct DetectorStats {
  uint64_t SamplesSeen = 0;
  uint64_t SamplesFiltered = 0; // outside monitored regions
  uint64_t SamplesRecorded = 0; // reached detailed line tracking
  uint64_t Invalidations = 0;
  // Page-granularity stage (zero unless TrackPages).
  uint64_t PageSamplesRecorded = 0; // reached detailed page tracking
  uint64_t PageInvalidations = 0;   // cross-node invalidations
  uint64_t RemoteSamples = 0;       // recorded from a non-home node
};

/// Sample-driven false-sharing detection state machine.
class Detector {
public:
  Detector(const CacheGeometry &Geometry, ShadowMemory &Shadow,
           const DetectorConfig &Config)
      : Geometry(Geometry), Shadow(Shadow), Config(Config) {}

  /// Enables the page-granularity stage: samples additionally update
  /// \p PageTable, with thread ids mapped to NUMA nodes through
  /// \p Topology. Both must outlive the detector. Call before ingestion
  /// starts (not thread-safe against concurrent handleSample).
  void attachPageTable(PageTable &Table, const NumaTopology &T) {
    Pages = &Table;
    Topology = &T;
  }

  /// Processes one PMU sample. \p InParallelPhase reflects the phase
  /// tracker's state at delivery time. \p AccessBytes is the access width
  /// for word marking. Thread-safe.
  /// \returns true if the sample was recorded in detailed tracking (at
  /// either granularity).
  bool handleSample(const pmu::Sample &Sample, bool InParallelPhase,
                    uint8_t AccessBytes = 4);

  /// Snapshot of the counters (consistent enough once ingestion quiesces).
  DetectorStats stats() const {
    DetectorStats Result;
    Result.SamplesSeen = SamplesSeen.load(std::memory_order_relaxed);
    Result.SamplesFiltered = SamplesFiltered.load(std::memory_order_relaxed);
    Result.SamplesRecorded = SamplesRecorded.load(std::memory_order_relaxed);
    Result.Invalidations = Invalidations.load(std::memory_order_relaxed);
    Result.PageSamplesRecorded =
        PageSamplesRecorded.load(std::memory_order_relaxed);
    Result.PageInvalidations =
        PageInvalidations.load(std::memory_order_relaxed);
    Result.RemoteSamples = RemoteSamples.load(std::memory_order_relaxed);
    return Result;
  }

  /// The shadow memory the detector writes into.
  ShadowMemory &shadow() { return Shadow; }
  const ShadowMemory &shadow() const { return Shadow; }

  /// The attached page table (nullptr when page tracking is off).
  PageTable *pageTable() { return Pages; }
  const PageTable *pageTable() const { return Pages; }

private:
  /// The page-granularity stage for one covered sample.
  /// \returns true if it reached detailed page tracking.
  bool handlePageSample(const pmu::Sample &Sample, bool InParallelPhase);

  CacheGeometry Geometry;
  ShadowMemory &Shadow;
  DetectorConfig Config;
  PageTable *Pages = nullptr;
  const NumaTopology *Topology = nullptr;
  std::atomic<uint64_t> SamplesSeen{0};
  std::atomic<uint64_t> SamplesFiltered{0};
  std::atomic<uint64_t> SamplesRecorded{0};
  std::atomic<uint64_t> Invalidations{0};
  std::atomic<uint64_t> PageSamplesRecorded{0};
  std::atomic<uint64_t> PageInvalidations{0};
  std::atomic<uint64_t> RemoteSamples{0};
};

} // namespace core
} // namespace cheetah

#endif // CHEETAH_CORE_DETECT_DETECTOR_H
