//===- core/detect/GrainInfo.cpp - Granularity-generic grain record -------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/detect/GrainInfo.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::core;

ThreadStatsChain::Chunk::Chunk() {
  for (size_t I = 0; I < Capacity; ++I) {
    Tids[I].store(NoThread, std::memory_order_relaxed);
    Accesses[I].store(0, std::memory_order_relaxed);
    Cycles[I].store(0, std::memory_order_relaxed);
  }
}

ThreadStatsChain::~ThreadStatsChain() {
  Chunk *Node = First.Next.load(std::memory_order_acquire);
  while (Node) {
    Chunk *Next = Node->Next.load(std::memory_order_acquire);
    delete Node;
    Node = Next;
  }
}

void ThreadStatsChain::add(ThreadId Tid, uint64_t Accesses, uint64_t Cycles) {
  Chunk *Node = &First;
  for (;;) {
    for (size_t I = 0; I < Chunk::Capacity; ++I) {
      ThreadId Slot = Node->Tids[I].load(std::memory_order_relaxed);
      if (Slot == NoThread &&
          Node->Tids[I].compare_exchange_strong(Slot, Tid,
                                                std::memory_order_relaxed))
        Slot = Tid;
      // On CAS failure `Slot` holds the claiming thread's id, which may
      // still be ours if another ingester raced the same sample tid.
      if (Slot == Tid) {
        Node->Accesses[I].fetch_add(Accesses, std::memory_order_relaxed);
        Node->Cycles[I].fetch_add(Cycles, std::memory_order_relaxed);
        return;
      }
    }
    Chunk *Next = Node->Next.load(std::memory_order_acquire);
    if (!Next) {
      auto *Fresh = new Chunk();
      if (Node->Next.compare_exchange_strong(Next, Fresh,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        Next = Fresh;
      } else {
        // Another ingesting thread published a chunk first; use theirs.
        delete Fresh;
      }
    }
    Node = Next;
  }
}

std::vector<ThreadLineStats> ThreadStatsChain::snapshot() const {
  std::vector<ThreadLineStats> Result;
  for (const Chunk *Node = &First; Node;
       Node = Node->Next.load(std::memory_order_acquire)) {
    for (size_t I = 0; I < Chunk::Capacity; ++I) {
      ThreadId Tid = Node->Tids[I].load(std::memory_order_relaxed);
      if (Tid == NoThread)
        continue;
      Result.push_back(
          {Tid, Node->Accesses[I].load(std::memory_order_relaxed),
           Node->Cycles[I].load(std::memory_order_relaxed)});
    }
  }
  std::sort(Result.begin(), Result.end(),
            [](const ThreadLineStats &A, const ThreadLineStats &B) {
              return A.Tid < B.Tid;
            });
  return Result;
}

size_t ThreadStatsChain::distinctThreads() const {
  size_t Count = 0;
  for (const Chunk *Node = &First; Node;
       Node = Node->Next.load(std::memory_order_acquire))
    for (size_t I = 0; I < Chunk::Capacity; ++I)
      if (Node->Tids[I].load(std::memory_order_relaxed) != NoThread)
        ++Count;
  return Count;
}

size_t ThreadStatsChain::overflowBytes() const {
  size_t Bytes = 0;
  for (const Chunk *Node = First.Next.load(std::memory_order_acquire); Node;
       Node = Node->Next.load(std::memory_order_acquire))
    Bytes += sizeof(Chunk);
  return Bytes;
}

void AtomicBucketStats::record(uint32_t Actor, AccessKind Kind,
                               uint64_t LatencyCycles) {
  if (Kind == AccessKind::Read)
    Reads.fetch_add(1, std::memory_order_relaxed);
  else
    Writes.fetch_add(1, std::memory_order_relaxed);
  if (LatencyCycles)
    Cycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
  uint32_t First = FirstActor.load(std::memory_order_relaxed);
  if (First == NoActor &&
      FirstActor.compare_exchange_strong(First, Actor,
                                         std::memory_order_relaxed))
    First = Actor;
  // On CAS failure `First` holds the actor that won the publication race.
  if (First != Actor)
    MultiActor.store(true, std::memory_order_relaxed);
}

void AtomicBucketStats::merge(const ShardBucketStats &Bucket) {
  if (Bucket.Reads == 0 && Bucket.Writes == 0)
    return; // untouched in this shard
  Reads.fetch_add(Bucket.Reads, std::memory_order_relaxed);
  Writes.fetch_add(Bucket.Writes, std::memory_order_relaxed);
  if (Bucket.Cycles)
    Cycles.fetch_add(Bucket.Cycles, std::memory_order_relaxed);
  uint32_t First = FirstActor.load(std::memory_order_relaxed);
  if (First == NoActor &&
      FirstActor.compare_exchange_strong(First, Bucket.FirstActor,
                                         std::memory_order_relaxed))
    First = Bucket.FirstActor;
  if (First != Bucket.FirstActor || Bucket.MultiActor)
    MultiActor.store(true, std::memory_order_relaxed);
}

WordStats AtomicBucketStats::snapshot() const {
  WordStats Result;
  Result.Reads = Reads.load(std::memory_order_relaxed);
  Result.Writes = Writes.load(std::memory_order_relaxed);
  Result.Cycles = Cycles.load(std::memory_order_relaxed);
  Result.FirstThread = FirstActor.load(std::memory_order_relaxed);
  Result.MultiThread = MultiActor.load(std::memory_order_relaxed);
  return Result;
}

void PageShardExtras::record(NodeId Node, AccessKind Kind,
                             uint64_t LatencyCycles,
                             const PageAccessContext &Ctx) {
  CHEETAH_ASSERT(Node < NumaTopology::MaxNodes, "node id out of range");
  if (Ctx.Remote) {
    RemoteAccesses += 1;
    RemoteCycles += LatencyCycles;
    uint32_t Distance =
        Ctx.Distance ? Ctx.Distance : NumaTopology::DefaultRemoteDistance;
    auto It = std::find_if(Remote.begin(), Remote.end(),
                           [Distance](const RemoteDistanceStats &Slot) {
                             return Slot.Distance == Distance;
                           });
    if (It == Remote.end()) {
      Remote.push_back({Distance, 0, 0});
      It = Remote.end() - 1;
    }
    It->Accesses += 1;
    It->Cycles += LatencyCycles;
  }
  NodeAccesses[Node] += 1;
  if (Kind == AccessKind::Write)
    NodeWrites[Node] += 1;
  NodeCycles[Node] += LatencyCycles;
}

PageGrainExtras::PageGrainExtras() {
  for (uint32_t N = 0; N < NumaTopology::MaxNodes; ++N) {
    NodeAccesses[N].store(0, std::memory_order_relaxed);
    NodeWrites[N].store(0, std::memory_order_relaxed);
    NodeCycles[N].store(0, std::memory_order_relaxed);
  }
}

void PageGrainExtras::record(NodeId Node, AccessKind Kind,
                             uint64_t LatencyCycles,
                             const PageAccessContext &Ctx) {
  CHEETAH_ASSERT(Node < NumaTopology::MaxNodes, "node id out of range");
  if (Ctx.Remote) {
    RemoteAccesses.fetch_add(1, std::memory_order_relaxed);
    RemoteCycles.fetch_add(LatencyCycles, std::memory_order_relaxed);
    // Every remote sample lands in a bucket so the breakdown always
    // conserves against RemoteAccesses. Validated topologies hand in
    // distances >= 1; a caller passing 0 (no distance information) folds
    // into the default remote distance.
    bucketRemote(Ctx.Distance ? Ctx.Distance
                              : NumaTopology::DefaultRemoteDistance,
                 1, LatencyCycles);
  }
  NodeAccesses[Node].fetch_add(1, std::memory_order_relaxed);
  if (Kind == AccessKind::Write)
    NodeWrites[Node].fetch_add(1, std::memory_order_relaxed);
  NodeCycles[Node].fetch_add(LatencyCycles, std::memory_order_relaxed);
}

void PageGrainExtras::merge(const PageShardExtras &Shard) {
  RemoteAccesses.fetch_add(Shard.RemoteAccesses, std::memory_order_relaxed);
  RemoteCycles.fetch_add(Shard.RemoteCycles, std::memory_order_relaxed);
  for (const RemoteDistanceStats &Slot : Shard.Remote)
    bucketRemote(Slot.Distance, Slot.Accesses, Slot.Cycles);
  for (uint32_t N = 0; N < NumaTopology::MaxNodes; ++N) {
    if (Shard.NodeAccesses[N])
      NodeAccesses[N].fetch_add(Shard.NodeAccesses[N],
                                std::memory_order_relaxed);
    if (Shard.NodeWrites[N])
      NodeWrites[N].fetch_add(Shard.NodeWrites[N], std::memory_order_relaxed);
    if (Shard.NodeCycles[N])
      NodeCycles[N].fetch_add(Shard.NodeCycles[N], std::memory_order_relaxed);
  }
}

void PageGrainExtras::bucketRemote(uint32_t Distance, uint64_t Accesses,
                                   uint64_t Cycles) {
  for (AtomicDistanceStats &Slot : DistanceSlots) {
    uint32_t Current = Slot.Distance.load(std::memory_order_relaxed);
    if (Current == 0 &&
        Slot.Distance.compare_exchange_strong(Current, Distance,
                                              std::memory_order_relaxed))
      Current = Distance;
    // On CAS failure `Current` holds the distance that won the slot.
    if (Current != Distance)
      continue;
    Slot.Accesses.fetch_add(Accesses, std::memory_order_relaxed);
    if (Cycles)
      Slot.Cycles.fetch_add(Cycles, std::memory_order_relaxed);
    return;
  }
  // A settled home yields at most MaxNodes - 1 distinct distances, so the
  // array cannot fill through the detector. Direct API misuse with more
  // distances than nodes folds into the last slot: the per-bucket split
  // degrades but the accesses/cycles conservation against remoteAccesses()
  // survives.
  DistanceSlots[NumaTopology::MaxNodes - 1].Accesses.fetch_add(
      Accesses, std::memory_order_relaxed);
  if (Cycles)
    DistanceSlots[NumaTopology::MaxNodes - 1].Cycles.fetch_add(
        Cycles, std::memory_order_relaxed);
}

std::vector<NodePageStats> PageGrainExtras::nodes() const {
  std::vector<NodePageStats> Result;
  for (uint32_t N = 0; N < NumaTopology::MaxNodes; ++N) {
    uint64_t NodeTotal = NodeAccesses[N].load(std::memory_order_relaxed);
    if (NodeTotal == 0)
      continue;
    Result.push_back({N, NodeTotal,
                      NodeWrites[N].load(std::memory_order_relaxed),
                      NodeCycles[N].load(std::memory_order_relaxed)});
  }
  return Result;
}

std::vector<RemoteDistanceStats> PageGrainExtras::remoteByDistance() const {
  std::vector<RemoteDistanceStats> Result;
  for (const AtomicDistanceStats &Slot : DistanceSlots) {
    RemoteDistanceStats Stats;
    Stats.Distance = Slot.Distance.load(std::memory_order_relaxed);
    Stats.Accesses = Slot.Accesses.load(std::memory_order_relaxed);
    Stats.Cycles = Slot.Cycles.load(std::memory_order_relaxed);
    if (Stats.Accesses == 0)
      continue;
    Result.push_back(Stats);
  }
  std::sort(Result.begin(), Result.end(),
            [](const RemoteDistanceStats &A, const RemoteDistanceStats &B) {
              return A.Distance < B.Distance;
            });
  return Result;
}

size_t PageGrainExtras::nodeCount() const {
  size_t Count = 0;
  for (uint32_t N = 0; N < NumaTopology::MaxNodes; ++N)
    if (NodeAccesses[N].load(std::memory_order_relaxed))
      ++Count;
  return Count;
}
