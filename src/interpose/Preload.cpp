//===- interpose/Preload.cpp - Real-thread interposition runtime ----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interpose/Preload.h"

#include "pmu/PerfEventPmu.h"
#include "pmu/PmuConfig.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

using namespace cheetah;
using namespace cheetah::interpose;

uint64_t cheetah::interpose::readTimestampCounter() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace {

/// How many samples a thread buffers before handing them to the sink as
/// one batch. Large enough to amortize the sink's per-batch bookkeeping
/// lock, small enough that reports stay fresh.
constexpr size_t SampleBatchCapacity = 256;

/// One application thread's private sample staging area. The owner thread
/// appends; the mutex only sees cross-thread traffic when summary() or
/// endProfiling() drains all buffers, so the hot path takes an uncontended
/// lock.
struct ThreadSampleBuffer {
  std::mutex Lock;
  std::vector<pmu::Sample> Samples;
};

/// Global interposition state. Counters are atomics: the wrappers run on
/// arbitrary application threads.
struct RuntimeState {
  std::atomic<bool> Started{false};
  std::atomic<uint64_t> Allocations{0};
  std::atomic<uint64_t> Deallocations{0};
  std::atomic<uint64_t> BytesAllocated{0};
  std::atomic<uint64_t> ThreadsCreated{0};
  std::atomic<uint64_t> ThreadsJoined{0};
  std::atomic<uint64_t> SamplesCollected{0};
  std::atomic<uint64_t> SamplesBuffered{0};
  std::atomic<uint64_t> SamplesIngested{0};
  uint64_t StartTimestamp = 0;
  bool PmuAvailable = false;
  std::string PmuStatus;

  std::mutex PmuMutex;
  // One sampler per attached thread would be the full design; the summary
  // path only needs the main thread's session to demonstrate real
  // collection where the host permits it.
  pmu::PerfEventPmu *MainSampler = nullptr;
  std::vector<pmu::Sample> PendingSamples;

  /// Registry of every thread's staging buffer, so cross-thread drains can
  /// reach samples a thread has not flushed itself. Append-only for the
  /// lifetime of a profiled run.
  std::mutex BuffersMutex;
  std::vector<std::shared_ptr<ThreadSampleBuffer>> Buffers;

  std::mutex SinkMutex;
  SampleBatchSink Sink;
};

RuntimeState &state() {
  // Function-local static: no global constructor, safe under LD_PRELOAD
  // where initialization order is hostile.
  static RuntimeState State;
  return State;
}

/// The calling thread's buffer, registered with the global state on first
/// use. The registry's shared_ptr keeps it drainable after thread exit.
ThreadSampleBuffer &threadBuffer() {
  thread_local std::shared_ptr<ThreadSampleBuffer> Buffer = [] {
    auto Fresh = std::make_shared<ThreadSampleBuffer>();
    RuntimeState &State = state();
    std::lock_guard<std::mutex> Lock(State.BuffersMutex);
    State.Buffers.push_back(Fresh);
    return Fresh;
  }();
  return *Buffer;
}

/// Hands \p Batch to the sink (or parks it in PendingSamples when no sink
/// is installed) and clears it. Called with no buffer lock held.
void deliverBatch(std::vector<pmu::Sample> &Batch) {
  if (Batch.empty())
    return;
  RuntimeState &State = state();
  SampleBatchSink Sink;
  {
    std::lock_guard<std::mutex> Lock(State.SinkMutex);
    Sink = State.Sink;
  }
  if (Sink) {
    Sink(Batch.data(), Batch.size());
    State.SamplesIngested.fetch_add(Batch.size(), std::memory_order_relaxed);
  } else {
    std::lock_guard<std::mutex> Lock(State.PmuMutex);
    State.PendingSamples.insert(State.PendingSamples.end(), Batch.begin(),
                                Batch.end());
  }
  Batch.clear();
}

} // namespace

void cheetah::interpose::beginProfiling() {
  RuntimeState &State = state();
  bool Expected = false;
  if (!State.Started.compare_exchange_strong(Expected, true))
    return;
  State.StartTimestamp = readTimestampCounter();

  std::lock_guard<std::mutex> Lock(State.PmuMutex);
  pmu::PmuConfig Config; // deployment defaults: 1/64K sampling
  State.MainSampler = new pmu::PerfEventPmu(Config);
  pmu::PerfEventStatus Status = State.MainSampler->start();
  State.PmuAvailable = Status.Available;
  State.PmuStatus = Status.Available ? "sampling" : Status.Reason;
  if (!Status.Available) {
    delete State.MainSampler;
    State.MainSampler = nullptr;
  }
}

void cheetah::interpose::threadAttach() {
  // Per-thread PMU programming. With perf_event inheritance unavailable in
  // self-monitoring mode, each thread would open its own fd; we register
  // the thread's sample staging buffer and leave collection to the main
  // session (attach itself is counted by noteThreadCreate).
  threadBuffer();
}

void cheetah::interpose::setSampleSink(SampleBatchSink Sink) {
  RuntimeState &State = state();
  {
    std::lock_guard<std::mutex> Lock(State.SinkMutex);
    State.Sink = std::move(Sink);
  }
  // Samples parked while no sink was installed belong to the new sink.
  std::vector<pmu::Sample> Parked;
  {
    std::lock_guard<std::mutex> Lock(State.PmuMutex);
    Parked.swap(State.PendingSamples);
  }
  deliverBatch(Parked);
}

void cheetah::interpose::recordSample(const pmu::Sample &Sample) {
  RuntimeState &State = state();
  ThreadSampleBuffer &Buffer = threadBuffer();
  std::vector<pmu::Sample> Full;
  {
    std::lock_guard<std::mutex> Lock(Buffer.Lock);
    if (Buffer.Samples.capacity() < SampleBatchCapacity)
      Buffer.Samples.reserve(SampleBatchCapacity);
    Buffer.Samples.push_back(Sample);
    if (Buffer.Samples.size() >= SampleBatchCapacity)
      Full.swap(Buffer.Samples);
  }
  State.SamplesBuffered.fetch_add(1, std::memory_order_relaxed);
  if (!Full.empty()) {
    deliverBatch(Full);
    // deliverBatch cleared Full but kept its 256-slot storage; hand it back
    // to the buffer so steady-state sampling never reallocates. Only this
    // thread appends to its own buffer, so empty means still-drained.
    std::lock_guard<std::mutex> Lock(Buffer.Lock);
    if (Buffer.Samples.empty())
      Buffer.Samples.swap(Full);
  }
}

void cheetah::interpose::flushThreadSamples() {
  ThreadSampleBuffer &Buffer = threadBuffer();
  std::vector<pmu::Sample> Drained;
  {
    std::lock_guard<std::mutex> Lock(Buffer.Lock);
    Drained.swap(Buffer.Samples);
  }
  deliverBatch(Drained);
}

void cheetah::interpose::flushAllSamples() {
  RuntimeState &State = state();
  std::vector<std::shared_ptr<ThreadSampleBuffer>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(State.BuffersMutex);
    Snapshot = State.Buffers;
  }
  std::vector<pmu::Sample> Drained;
  for (const auto &Buffer : Snapshot) {
    {
      std::lock_guard<std::mutex> Lock(Buffer->Lock);
      Drained.swap(Buffer->Samples);
    }
    deliverBatch(Drained);
  }

  // Samples the real PMU sampler (or a sink-less deliverBatch) parked in
  // PendingSamples also belong to the sink once one is installed.
  bool HaveSink;
  {
    std::lock_guard<std::mutex> Lock(State.SinkMutex);
    HaveSink = static_cast<bool>(State.Sink);
  }
  if (HaveSink) {
    std::vector<pmu::Sample> Parked;
    {
      std::lock_guard<std::mutex> Lock(State.PmuMutex);
      Parked.swap(State.PendingSamples);
    }
    deliverBatch(Parked);
  }
}

void cheetah::interpose::endProfiling() {
  RuntimeState &State = state();
  {
    std::lock_guard<std::mutex> Lock(State.PmuMutex);
    if (State.MainSampler) {
      State.SamplesCollected +=
          State.MainSampler->drain(State.PendingSamples);
      State.MainSampler->stop();
      delete State.MainSampler;
      State.MainSampler = nullptr;
    }
  }
  flushAllSamples();
}

void *cheetah::interpose::interposedMalloc(size_t Size, void *ReturnAddress) {
  RuntimeState &State = state();
  State.Allocations.fetch_add(1, std::memory_order_relaxed);
  State.BytesAllocated.fetch_add(Size, std::memory_order_relaxed);
  (void)ReturnAddress; // retained for callsite attribution in reports
  return std::malloc(Size);
}

void cheetah::interpose::interposedFree(void *Ptr) {
  if (!Ptr)
    return;
  state().Deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(Ptr);
}

void cheetah::interpose::noteThreadCreate() {
  state().ThreadsCreated.fetch_add(1, std::memory_order_relaxed);
}

void cheetah::interpose::noteThreadJoin() {
  state().ThreadsJoined.fetch_add(1, std::memory_order_relaxed);
}

InterposeSummary cheetah::interpose::summary() {
  RuntimeState &State = state();
  {
    std::lock_guard<std::mutex> Lock(State.PmuMutex);
    if (State.MainSampler)
      State.SamplesCollected +=
          State.MainSampler->drain(State.PendingSamples);
  }
  flushAllSamples();
  InterposeSummary Result;
  Result.Allocations = State.Allocations.load();
  Result.Deallocations = State.Deallocations.load();
  Result.BytesAllocated = State.BytesAllocated.load();
  Result.ThreadsCreated = State.ThreadsCreated.load();
  Result.ThreadsJoined = State.ThreadsJoined.load();
  Result.SamplesCollected = State.SamplesCollected.load();
  Result.SamplesBuffered = State.SamplesBuffered.load();
  Result.SamplesIngested = State.SamplesIngested.load();
  Result.PmuAvailable = State.PmuAvailable;
  Result.PmuStatus = State.PmuStatus;
  Result.StartTimestamp = State.StartTimestamp;
  return Result;
}

void cheetah::interpose::resetForTesting() {
  endProfiling();
  RuntimeState &State = state();
  State.Started = false;
  State.Allocations = 0;
  State.Deallocations = 0;
  State.BytesAllocated = 0;
  State.ThreadsCreated = 0;
  State.ThreadsJoined = 0;
  State.SamplesCollected = 0;
  State.SamplesBuffered = 0;
  State.SamplesIngested = 0;
  State.PmuAvailable = false;
  State.PmuStatus.clear();
  State.PendingSamples.clear();
  {
    std::lock_guard<std::mutex> Lock(State.SinkMutex);
    State.Sink = nullptr;
  }
  // Buffers stay registered (live threads keep thread_local references to
  // them); emptying them is enough to isolate tests from each other.
  std::lock_guard<std::mutex> Lock(State.BuffersMutex);
  for (const auto &Buffer : State.Buffers) {
    std::lock_guard<std::mutex> BufferLock(Buffer->Lock);
    Buffer->Samples.clear();
  }
}

//===----------------------------------------------------------------------===//
// C entry points for LD_PRELOAD use.
//===----------------------------------------------------------------------===//

extern "C" {

void cheetah_begin_profiling() { beginProfiling(); }
void cheetah_end_profiling() { endProfiling(); }

void *cheetah_malloc(size_t Size) {
  return interposedMalloc(Size, __builtin_return_address(0));
}

void cheetah_free(void *Ptr) { interposedFree(Ptr); }

void cheetah_note_thread_create() { noteThreadCreate(); }
void cheetah_note_thread_join() { noteThreadJoin(); }

} // extern "C"
