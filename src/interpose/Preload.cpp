//===- interpose/Preload.cpp - Real-thread interposition runtime ----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interpose/Preload.h"

#include "pmu/PerfEventPmu.h"
#include "pmu/PmuConfig.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

using namespace cheetah;
using namespace cheetah::interpose;

uint64_t cheetah::interpose::readTimestampCounter() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace {

/// Global interposition state. Counters are atomics: the wrappers run on
/// arbitrary application threads.
struct RuntimeState {
  std::atomic<bool> Started{false};
  std::atomic<uint64_t> Allocations{0};
  std::atomic<uint64_t> Deallocations{0};
  std::atomic<uint64_t> BytesAllocated{0};
  std::atomic<uint64_t> ThreadsCreated{0};
  std::atomic<uint64_t> ThreadsJoined{0};
  std::atomic<uint64_t> SamplesCollected{0};
  uint64_t StartTimestamp = 0;
  bool PmuAvailable = false;
  std::string PmuStatus;

  std::mutex PmuMutex;
  // One sampler per attached thread would be the full design; the summary
  // path only needs the main thread's session to demonstrate real
  // collection where the host permits it.
  pmu::PerfEventPmu *MainSampler = nullptr;
  std::vector<pmu::Sample> PendingSamples;
};

RuntimeState &state() {
  // Function-local static: no global constructor, safe under LD_PRELOAD
  // where initialization order is hostile.
  static RuntimeState State;
  return State;
}

} // namespace

void cheetah::interpose::beginProfiling() {
  RuntimeState &State = state();
  bool Expected = false;
  if (!State.Started.compare_exchange_strong(Expected, true))
    return;
  State.StartTimestamp = readTimestampCounter();

  std::lock_guard<std::mutex> Lock(State.PmuMutex);
  pmu::PmuConfig Config; // deployment defaults: 1/64K sampling
  State.MainSampler = new pmu::PerfEventPmu(Config);
  pmu::PerfEventStatus Status = State.MainSampler->start();
  State.PmuAvailable = Status.Available;
  State.PmuStatus = Status.Available ? "sampling" : Status.Reason;
  if (!Status.Available) {
    delete State.MainSampler;
    State.MainSampler = nullptr;
  }
}

void cheetah::interpose::threadAttach() {
  // Per-thread PMU programming. With perf_event inheritance unavailable in
  // self-monitoring mode, each thread would open its own fd; we account the
  // attach and leave collection to the main session.
  state().ThreadsCreated.fetch_add(0); // attach is counted by noteThreadCreate
}

void cheetah::interpose::endProfiling() {
  RuntimeState &State = state();
  std::lock_guard<std::mutex> Lock(State.PmuMutex);
  if (State.MainSampler) {
    State.SamplesCollected +=
        State.MainSampler->drain(State.PendingSamples);
    State.MainSampler->stop();
    delete State.MainSampler;
    State.MainSampler = nullptr;
  }
}

void *cheetah::interpose::interposedMalloc(size_t Size, void *ReturnAddress) {
  RuntimeState &State = state();
  State.Allocations.fetch_add(1, std::memory_order_relaxed);
  State.BytesAllocated.fetch_add(Size, std::memory_order_relaxed);
  (void)ReturnAddress; // retained for callsite attribution in reports
  return std::malloc(Size);
}

void cheetah::interpose::interposedFree(void *Ptr) {
  if (!Ptr)
    return;
  state().Deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(Ptr);
}

void cheetah::interpose::noteThreadCreate() {
  state().ThreadsCreated.fetch_add(1, std::memory_order_relaxed);
}

void cheetah::interpose::noteThreadJoin() {
  state().ThreadsJoined.fetch_add(1, std::memory_order_relaxed);
}

InterposeSummary cheetah::interpose::summary() {
  RuntimeState &State = state();
  {
    std::lock_guard<std::mutex> Lock(State.PmuMutex);
    if (State.MainSampler)
      State.SamplesCollected +=
          State.MainSampler->drain(State.PendingSamples);
  }
  InterposeSummary Result;
  Result.Allocations = State.Allocations.load();
  Result.Deallocations = State.Deallocations.load();
  Result.BytesAllocated = State.BytesAllocated.load();
  Result.ThreadsCreated = State.ThreadsCreated.load();
  Result.ThreadsJoined = State.ThreadsJoined.load();
  Result.SamplesCollected = State.SamplesCollected.load();
  Result.PmuAvailable = State.PmuAvailable;
  Result.PmuStatus = State.PmuStatus;
  Result.StartTimestamp = State.StartTimestamp;
  return Result;
}

void cheetah::interpose::resetForTesting() {
  endProfiling();
  RuntimeState &State = state();
  State.Started = false;
  State.Allocations = 0;
  State.Deallocations = 0;
  State.BytesAllocated = 0;
  State.ThreadsCreated = 0;
  State.ThreadsJoined = 0;
  State.SamplesCollected = 0;
  State.PmuAvailable = false;
  State.PmuStatus.clear();
  State.PendingSamples.clear();
}

//===----------------------------------------------------------------------===//
// C entry points for LD_PRELOAD use.
//===----------------------------------------------------------------------===//

extern "C" {

void cheetah_begin_profiling() { beginProfiling(); }
void cheetah_end_profiling() { endProfiling(); }

void *cheetah_malloc(size_t Size) {
  return interposedMalloc(Size, __builtin_return_address(0));
}

void cheetah_free(void *Ptr) { interposedFree(Ptr); }

void cheetah_note_thread_create() { noteThreadCreate(); }
void cheetah_note_thread_join() { noteThreadJoin(); }

} // extern "C"
