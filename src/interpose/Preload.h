//===- interpose/Preload.h - Real-thread interposition runtime -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-deployment face of Cheetah: an interposition runtime that can
/// be linked (or LD_PRELOADed as libcheetah_preload.so) into an unmodified
/// pthreads program. It intercepts allocations and thread creation exactly
/// as the paper describes — "there is no need for a custom OS, nor
/// recompilation and changing of programs" — records allocation callsites
/// and thread lifetimes with RDTSC timestamps, and, when the host exposes
/// precise PMU sampling, drains real samples into the same Detector the
/// simulator path uses.
///
/// On hosts without PMU access (most containers) everything except sample
/// collection still works, and `interpose::summary()` reports why samples
/// are unavailable. The two-API contract from the paper's Section 5 maps
/// to `beginProfiling()` / `threadAttach()`.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_INTERPOSE_PRELOAD_H
#define CHEETAH_INTERPOSE_PRELOAD_H

#include "pmu/Sample.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace cheetah {
namespace interpose {

/// Aggregate state of the interposition runtime.
struct InterposeSummary {
  uint64_t Allocations = 0;
  uint64_t Deallocations = 0;
  uint64_t BytesAllocated = 0;
  uint64_t ThreadsCreated = 0;
  uint64_t ThreadsJoined = 0;
  uint64_t SamplesCollected = 0;
  /// Samples that passed through the per-thread buffers.
  uint64_t SamplesBuffered = 0;
  /// Samples delivered to the registered batch sink.
  uint64_t SamplesIngested = 0;
  bool PmuAvailable = false;
  std::string PmuStatus;
  /// TSC at beginProfiling().
  uint64_t StartTimestamp = 0;
};

/// Starts the runtime on the calling thread: records the baseline RDTSC
/// timestamp and attempts to start PMU sampling (API one of the paper's
/// two-API contract). Idempotent.
void beginProfiling();

/// Attaches the current thread to the profiler: programs its PMU sampling
/// and registers its start timestamp (API two). Called automatically for
/// threads created through the interposed pthread_create.
void threadAttach();

/// Stops sampling and freezes counters.
void endProfiling();

/// Intercepted allocation entry points (also exported with C linkage from
/// the shared library for LD_PRELOAD use).
void *interposedMalloc(size_t Size, void *ReturnAddress);
void interposedFree(void *Ptr);

/// Notifies the runtime of a thread creation/join observed by the
/// pthread_create/pthread_join wrappers.
void noteThreadCreate();
void noteThreadJoin();

/// Batch consumer for drained samples. The driver typically wires this to
/// core::Profiler::ingestBatch, which is safe to call from many threads —
/// any sink installed here must be equally thread-safe.
using SampleBatchSink = std::function<void(const pmu::Sample *, size_t)>;

/// Installs (or, with an empty function, removes) the sink that drained
/// sample batches are delivered to. Without a sink, drained samples are
/// retained until one is installed or the state is reset.
void setSampleSink(SampleBatchSink Sink);

/// Appends one sample to the calling thread's private buffer. The buffer
/// lock is only ever contended by an explicit cross-thread drain, so many
/// application threads can record concurrently without serializing on any
/// global state; full buffers are delivered to the sink in one batch.
void recordSample(const pmu::Sample &Sample);

/// Delivers the calling thread's buffered samples to the sink now.
void flushThreadSamples();

/// Drains every thread's buffer (also done by summary()/endProfiling()).
void flushAllSamples();

/// Drains any pending PMU samples and returns the current counters.
InterposeSummary summary();

/// Resets all state (tests only).
void resetForTesting();

/// Reads the time-stamp counter (RDTSC on x86, a monotonic clock
/// elsewhere) — the paper's per-thread timing source.
uint64_t readTimestampCounter();

} // namespace interpose
} // namespace cheetah

#endif // CHEETAH_INTERPOSE_PRELOAD_H
