//===- workloads/Workload.h - Workload model framework ----------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Framework for the evaluated applications. The paper measures Cheetah on
/// the Phoenix and PARSEC suites; since the profiler only observes memory
/// access patterns, each application is reproduced as a scaled-down *access
/// pattern model*: the same object layout, thread structure (fork-join
/// phases, thread counts), read/write mix, and — where the paper found them
/// — the same false-sharing sites, with a `FixFalseSharing` switch that
/// applies the paper's padding fix. Workloads allocate through the Cheetah
/// heap / global registry via WorkloadContext so reports carry real
/// callsites and symbol names.
///
/// Thread bodies are free coroutine functions taking parameters by value
/// (never capturing lambdas: a coroutine lambda's captures die with the
/// lambda object while the frame lives on).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_WORKLOADS_WORKLOAD_H
#define CHEETAH_WORKLOADS_WORKLOAD_H

#include "mem/CacheGeometry.h"
#include "sim/ForkJoinProgram.h"
#include "support/Random.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cheetah {
namespace workloads {

/// Knobs common to every workload.
struct WorkloadConfig {
  /// Child threads per parallel phase (the paper evaluates with 16).
  uint32_t Threads = 16;
  /// Work multiplier; 1 is sized for sub-second simulation.
  double Scale = 1.0;
  /// Apply the paper's padding fix to known false-sharing sites.
  bool FixFalseSharing = false;
  /// Seed for any stochastic access patterns.
  uint64_t Seed = 0x43484545;
  /// Simulated NUMA node count the NUMA workloads lay their data out for;
  /// should match the profiler topology (threads interleave tid % nodes).
  uint32_t NumaNodes = 2;
  /// Page size the NUMA workloads pad/align to; should match the topology.
  uint64_t PageBytes = 4096;
  /// Explicit thread→node pinning map mirroring the profiler topology's
  /// (NumaTopology::threadPinning); empty = the tid % NumaNodes
  /// interleave. NUMA workloads lay data out per node, so their layout
  /// must agree with wherever the threads actually run.
  std::vector<uint32_t> ThreadNodes;

  /// Node the thread executing parallel body \p BodyIndex runs on (body T
  /// runs as tid T + 1; the main thread, tid 0, is nodeOfTid(0)). Matches
  /// NumaTopology::nodeOf for the same configuration.
  uint32_t nodeOfBody(uint32_t BodyIndex) const {
    return nodeOfTid(BodyIndex + 1);
  }
  uint32_t nodeOfTid(uint32_t Tid) const {
    if (!ThreadNodes.empty())
      return ThreadNodes[Tid % ThreadNodes.size()];
    uint32_t Nodes = NumaNodes ? NumaNodes : 1;
    return Tid % Nodes;
  }
};

/// Allocation services handed to a workload at build time (backed by the
/// profiler's heap and global registry, or by a plain arena in baseline-only
/// runs).
struct WorkloadContext {
  /// Allocates from the Cheetah heap recording File:Line as the callsite.
  /// Returns the object's start address.
  std::function<uint64_t(uint64_t Size, const std::string &File,
                         unsigned Line)>
      Allocate;
  /// Defines a named global; when \p LineAligned the global starts on a
  /// cache-line boundary.
  std::function<uint64_t(const std::string &Name, uint64_t Size,
                         bool LineAligned)>
      DefineGlobal;
  /// Cache geometry in effect (workload padding decisions depend on it).
  CacheGeometry Geometry{64};

  uint64_t allocate(uint64_t Size, const std::string &File, unsigned Line) {
    return Allocate(Size, File, Line);
  }
  uint64_t global(const std::string &Name, uint64_t Size,
                  bool LineAligned = false) {
    return DefineGlobal(Name, Size, LineAligned);
  }
};

/// One evaluated application.
class Workload {
public:
  virtual ~Workload() = default;

  /// Short identifier, e.g. "linear_regression".
  virtual std::string name() const = 0;

  /// Origin suite: "phoenix", "parsec", or "micro".
  virtual std::string suite() const = 0;

  /// One-line description of the modeled access pattern.
  virtual std::string description() const = 0;

  /// True if the paper reports a significant false-sharing instance that
  /// Cheetah detects in this application.
  virtual bool hasSignificantFalseSharing() const { return false; }

  /// True if the application contains a minor false-sharing instance that
  /// sampling misses (Figure 7's histogram/reverse_index/word_count).
  virtual bool hasMinorFalseSharing() const { return false; }

  /// Substring that identifies the workload's false-sharing object in a
  /// report (callsite or global name); empty when none.
  virtual std::string falseSharingSiteTag() const { return ""; }

  /// Lower bound on the predicted improvement factor the broken variant's
  /// significant *page* findings must carry under the reference
  /// configuration (2 nodes, 8 threads, dense sampling). 0 means the
  /// workload has no page-granularity pathology. The differential
  /// assessment tests and the CI diff gate anchor on this constant.
  virtual double expectedPageImprovementFloor() const { return 0.0; }

  /// Builds the fork-join program. Allocations go through \p Ctx.
  virtual sim::ForkJoinProgram build(WorkloadContext &Ctx,
                                     const WorkloadConfig &Config) const = 0;
};

/// Instantiates every modeled application (8 Phoenix + 9 PARSEC + micro).
/// No static constructors: callers own the instances.
std::vector<std::unique_ptr<Workload>> createAllWorkloads();

/// \returns the workload named \p Name, or nullptr.
std::unique_ptr<Workload> createWorkload(const std::string &Name);

/// Names of all workloads in canonical (paper Figure 4) order.
std::vector<std::string> allWorkloadNames();

} // namespace workloads
} // namespace cheetah

#endif // CHEETAH_WORKLOADS_WORKLOAD_H
