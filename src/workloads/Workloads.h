//===- workloads/Workloads.h - Internal workload registration --*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header linking the per-suite workload translation units to the
/// public registry in Workload.h. Not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_WORKLOADS_WORKLOADS_H
#define CHEETAH_WORKLOADS_WORKLOADS_H

#include "workloads/Workload.h"

#include <cmath>
#include <memory>
#include <vector>

namespace cheetah {
namespace workloads {

/// Appends the eight Phoenix application models.
void appendPhoenixWorkloads(std::vector<std::unique_ptr<Workload>> &Out);

/// Appends the nine PARSEC application models.
void appendParsecWorkloads(std::vector<std::unique_ptr<Workload>> &Out);

/// Appends the microbenchmarks (the Figure 1 array increment).
void appendMicroWorkloads(std::vector<std::unique_ptr<Workload>> &Out);

/// Appends the NUMA placement models (interleaved pages, first-touch bug).
void appendNumaWorkloads(std::vector<std::unique_ptr<Workload>> &Out);

} // namespace workloads
} // namespace cheetah

#endif // CHEETAH_WORKLOADS_WORKLOADS_H
