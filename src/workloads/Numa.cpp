//===- workloads/Numa.cpp - NUMA placement workload models ----------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Workloads whose pathology lives at *page* granularity, invisible to the
/// line-level detector:
///
///  - `numa_interleaved`: every thread hammers its own cache line, but the
///    lines are packed so one 4 KiB page carries lines owned by threads on
///    different NUMA nodes — false *page* sharing. No cache line is ever
///    shared, so `--granularity=line` reports nothing; the page detector
///    sees cross-node invalidation ping-pong. The fix pads each thread's
///    slot to its own page (node-local placement).
///
///  - `numa_first_touch`: the classic first-touch bug. The main thread
///    initializes the whole array serially, homing every page on node 0;
///    worker threads then scan private page-aligned blocks, so half of
///    them stream from remote DRAM forever. No sharing at either
///    granularity — a pure placement problem the page detector surfaces
///    through its remote-access accounting. The fix replaces the serial
///    initialization with a parallel first-touch phase that homes each
///    block on its worker's node.
///
///  - `numa_asymmetric`: the first-touch bug on an asymmetric machine
///    (4 nodes, non-uniform distances, pinned threads). One block group
///    per node, all serially first-touched onto node 0, every group doing
///    the *same* amount of remote work — so the binary local/remote model
///    sees indistinguishable findings, and only the distance matrix makes
///    the far group's finding rank worst. The fix is initialize-on-first-
///    use: each worker's first scan access first-touches (and thus homes)
///    its own block.
///
/// Thread-to-node affinity follows WorkloadConfig::nodeOfBody — the
/// explicit pinning map when one is installed, NumaTopology's interleave
/// (tid % nodes) otherwise; the first-touch fixes assume the touch and
/// work phases land on the same nodes (true for any fixed affinity).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Patterns.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

using namespace cheetah;
using namespace cheetah::workloads;

namespace {

/// Defines a named global sized and padded so that \p Bytes of usable space
/// start on a page boundary. Ctx.global only guarantees line alignment, and
/// the NUMA fixes are meaningless if "one page per slot group" can straddle
/// page boundaries, so alignment is arranged explicitly rather than
/// inherited from the segment layout.
uint64_t pageAlignedGlobal(WorkloadContext &Ctx, const std::string &Name,
                           uint64_t Bytes, uint64_t PageBytes) {
  uint64_t Raw = Ctx.global(Name, Bytes + PageBytes, true);
  return (Raw + PageBytes - 1) & ~(PageBytes - 1);
}

/// Serial first touch over a list of (base, bytes) spans: one 8-byte
/// write per word, homing every page on the issuing thread's node. A free
/// coroutine taking its parameter by value (the capture-free rule).
Generator<ThreadEvent>
writeSpans(std::vector<std::pair<uint64_t, uint64_t>> Spans) {
  for (const auto &[Base, Bytes] : Spans)
    for (uint64_t Offset = 0; Offset < Bytes; Offset += 8)
      co_yield ThreadEvent::write(Base + Offset, 8);
}

/// Per-body node assignment for node-grouped data layouts: which node each
/// parallel body runs on (honoring any pinning map via nodeOfBody), its
/// rank among that node's bodies, and the largest per-node population —
/// what a layout needs to size one span per node.
struct NodeLayout {
  std::vector<uint32_t> NodeOf;
  std::vector<uint64_t> RankInNode;
  uint64_t MaxPerNode = 1;
};

NodeLayout nodeLayout(const WorkloadConfig &Config, uint32_t Nodes) {
  NodeLayout Layout;
  Layout.NodeOf.resize(Config.Threads);
  Layout.RankInNode.resize(Config.Threads);
  std::vector<uint64_t> PerNode(Nodes, 0);
  for (uint32_t T = 0; T < Config.Threads; ++T) {
    Layout.NodeOf[T] = Config.nodeOfBody(T) % Nodes;
    Layout.RankInNode[T] = PerNode[Layout.NodeOf[T]]++;
  }
  for (uint64_t Count : PerNode)
    Layout.MaxPerNode = std::max(Layout.MaxPerNode, Count);
  return Layout;
}

/// Per-line private work over one thread's block: read a word, compute,
/// write an adjacent word — single-thread at line granularity, so the only
/// cost that can differ between placements is where the page lives.
Generator<ThreadEvent> blockWork(uint64_t Base, uint64_t Bytes,
                                 uint64_t Passes, uint64_t LineStride) {
  for (uint64_t Pass = 0; Pass < Passes; ++Pass)
    for (uint64_t Offset = 0; Offset < Bytes; Offset += LineStride) {
      co_yield ThreadEvent::read(Base + Offset, 4);
      co_yield ThreadEvent::compute(2);
      co_yield ThreadEvent::write(Base + Offset + 8, 4);
    }
}

class NumaInterleavedWorkload : public Workload {
public:
  std::string name() const override { return "numa_interleaved"; }
  std::string suite() const override { return "numa"; }
  std::string description() const override {
    return "per-thread cache lines packed into shared pages across NUMA "
           "nodes: false page sharing the line detector cannot see";
  }
  std::string falseSharingSiteTag() const override {
    return "numa_interleaved_slots";
  }
  double expectedPageImprovementFloor() const override {
    // Reference config measures ~2.7x (predicted and padded-rerun agree);
    // the floor leaves headroom for sampling-period variation.
    return 1.5;
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    // One slot (one cache line) per thread. Unfixed they pack line-to-line
    // into pages shared across nodes. The fix is node-local allocation:
    // slots regroup by NUMA node (body T's node per nodeOfBody, honoring
    // any pinning map), each node's group page-aligned in its own page
    // span, so no page is ever touched by two nodes and every first touch
    // — and thus every page home — is node-local.
    uint64_t LineStride = std::max<uint64_t>(Ctx.Geometry.lineSize(), 64);
    uint32_t Nodes = std::max<uint32_t>(Config.NumaNodes, 1);
    NodeLayout Layout = nodeLayout(Config, Nodes);
    uint64_t NodeSpan =
        ((Layout.MaxPerNode * LineStride + Config.PageBytes - 1) /
         Config.PageBytes) *
        Config.PageBytes;
    uint64_t TotalBytes = Config.FixFalseSharing
                              ? uint64_t(Nodes) * NodeSpan
                              : uint64_t(Config.Threads) * LineStride;
    uint64_t Slots = pageAlignedGlobal(Ctx, "numa_interleaved_slots",
                                       TotalBytes, Config.PageBytes);

    uint64_t Iterations = static_cast<uint64_t>(
        std::max(1.0, 30000.0 * Config.Scale));

    sim::PhaseSpec &Phase = Program.addPhase("hammer");
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Slot;
      if (Config.FixFalseSharing) {
        Slot = Slots + Layout.NodeOf[T] * NodeSpan +
               Layout.RankInNode[T] * LineStride;
      } else {
        Slot = Slots + uint64_t(T) * LineStride;
      }
      Phase.ParallelBodies.push_back(
          [=]() { return hammerSlot(Slot, Iterations, 3, 4); });
    }
    return Program;
  }
};

class NumaFirstTouchWorkload : public Workload {
public:
  std::string name() const override { return "numa_first_touch"; }
  std::string suite() const override { return "numa"; }
  std::string description() const override {
    return "serial initialization homes every page on node 0, so half the "
           "workers stream from remote DRAM; fix = parallel first touch";
  }
  std::string falseSharingSiteTag() const override {
    return "numa_first_touch_blocks";
  }
  double expectedPageImprovementFloor() const override {
    // Reference config predicts ~1.5x (the padded rerun also gains the
    // parallelized init, which assessment deliberately does not credit).
    return 1.2;
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t LineStride = std::max<uint64_t>(Ctx.Geometry.lineSize(), 64);
    // Four pages of private data per worker, page-aligned blocks.
    uint64_t BlockBytes = 4 * Config.PageBytes;
    uint64_t Blocks =
        pageAlignedGlobal(Ctx, "numa_first_touch_blocks",
                          uint64_t(Config.Threads) * BlockBytes,
                          Config.PageBytes);
    uint64_t Passes = static_cast<uint64_t>(
        std::max(4.0, 60.0 * Config.Scale));

    if (Config.FixFalseSharing) {
      // The fix: each worker first-touches (and initializes) its own block
      // in a parallel phase, homing the pages on its node. Assumes an even
      // thread count so this phase and the work phase interleave onto the
      // same nodes.
      sim::PhaseSpec &Touch = Program.addPhase("first_touch");
      for (uint32_t T = 0; T < Config.Threads; ++T) {
        uint64_t Block = Blocks + uint64_t(T) * BlockBytes;
        Touch.ParallelBodies.push_back([=]() {
          return writeInit(Block, BlockBytes, 1, 8);
        });
      }
    }

    sim::PhaseSpec &Work = Program.addPhase("scan");
    if (!Config.FixFalseSharing) {
      // The bug: node 0 (the main thread) touches everything first.
      uint64_t Base = Blocks;
      uint64_t Bytes = uint64_t(Config.Threads) * BlockBytes;
      Work.SerialBody = [=]() { return writeInit(Base, Bytes, 1, 8); };
    }
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Block = Blocks + uint64_t(T) * BlockBytes;
      Work.ParallelBodies.push_back([=]() {
        return blockWork(Block, BlockBytes, Passes, LineStride);
      });
    }
    return Program;
  }
};

class NumaAsymmetricWorkload : public Workload {
public:
  std::string name() const override { return "numa_asymmetric"; }
  std::string suite() const override { return "numa"; }
  std::string description() const override {
    return "per-node block groups all first-touched on node 0 doing equal "
           "remote work: only a distance matrix ranks the far group worst";
  }
  std::string falseSharingSiteTag() const override {
    return "numa_asymmetric_node";
  }
  double expectedPageImprovementFloor() const override {
    // Reference config (4 nodes, the asymmetric4 distance matrix, 8
    // threads, dense sampling) predicts ~1.25x for the far group's site —
    // the only site above 1.0, since the far threads alone bound the
    // phase; the floor leaves headroom for sampling-period variation.
    return 1.15;
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    // One page-aligned block group per node, each its own global (its own
    // report *site*), each receiving the same amount of work from the
    // threads pinned to its node. Broken, every group is first-touched by
    // the serial init on the main thread's node, so each remote group
    // streams over a different node pair at the same access volume —
    // indistinguishable under the binary local/remote model, ranked by
    // the distance matrix alone.
    uint64_t LineStride = std::max<uint64_t>(Ctx.Geometry.lineSize(), 64);
    uint32_t Nodes = std::max<uint32_t>(Config.NumaNodes, 1);
    // One page per worker: concentrating each thread's traffic on a single
    // page keeps every remote page comfortably above the placement gate at
    // the reference sampling density.
    uint64_t BlockBytes = Config.PageBytes;

    NodeLayout Layout = nodeLayout(Config, Nodes);
    uint64_t BlocksPerNode = Layout.MaxPerNode;

    std::vector<uint64_t> Groups(Nodes);
    for (uint32_t Node = 0; Node < Nodes; ++Node)
      Groups[Node] = pageAlignedGlobal(
          Ctx, "numa_asymmetric_node" + std::to_string(Node),
          BlocksPerNode * BlockBytes, Config.PageBytes);

    uint64_t Passes =
        static_cast<uint64_t>(std::max(4.0, 120.0 * Config.Scale));

    // The fix is initialize-on-first-use: drop the eager serial
    // initialization and let each worker's own first scan access be the
    // first touch, homing its block on its node with no extra phase.
    sim::PhaseSpec &Work = Program.addPhase("scan");
    if (!Config.FixFalseSharing) {
      // The bug: the main thread eagerly initializes every group first,
      // homing all of them on its node.
      std::vector<std::pair<uint64_t, uint64_t>> Spans;
      for (uint32_t Node = 0; Node < Nodes; ++Node)
        Spans.push_back({Groups[Node], BlocksPerNode * BlockBytes});
      Work.SerialBody = [Spans]() { return writeSpans(Spans); };
    }
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Block =
          Groups[Layout.NodeOf[T]] + Layout.RankInNode[T] * BlockBytes;
      Work.ParallelBodies.push_back(
          [=]() { return blockWork(Block, BlockBytes, Passes, LineStride); });
    }
    return Program;
  }
};

} // namespace

namespace cheetah {
namespace workloads {

void appendNumaWorkloads(std::vector<std::unique_ptr<Workload>> &Out) {
  Out.push_back(std::make_unique<NumaInterleavedWorkload>());
  Out.push_back(std::make_unique<NumaFirstTouchWorkload>());
  Out.push_back(std::make_unique<NumaAsymmetricWorkload>());
}

} // namespace workloads
} // namespace cheetah
