//===- workloads/Patterns.h - Shared access-pattern coroutines -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reusable thread-body building blocks: sequential initialization, read
/// scans, strided private accumulation. All functions take parameters by
/// value (coroutine-safe) and yield ThreadEvents.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_WORKLOADS_PATTERNS_H
#define CHEETAH_WORKLOADS_PATTERNS_H

#include "mem/MemoryAccess.h"
#include "support/Generator.h"

#include <cstdint>

namespace cheetah {
namespace workloads {

/// Writes \p Bytes starting at \p Base in \p AccessSize strides with
/// \p ComputePerAccess instructions between stores (typical serial init).
Generator<ThreadEvent> writeInit(uint64_t Base, uint64_t Bytes,
                                 uint32_t ComputePerAccess,
                                 uint8_t AccessSize = 8);

/// Reads \p Bytes starting at \p Base, \p Repeats times, in \p AccessSize
/// strides with \p ComputePerAccess instructions between loads.
Generator<ThreadEvent> readScan(uint64_t Base, uint64_t Bytes,
                                uint32_t Repeats, uint32_t ComputePerAccess,
                                uint8_t AccessSize = 4);

/// The core "scan private input, update a hot accumulator" loop shared by
/// several models. Per iteration: \p ReadsPerItem loads from a sequential
/// input region, \p ComputePerItem instructions, and \p WritesPerItem
/// 8-byte stores into [AccumBase, AccumBase + AccumBytes) round-robin.
struct AccumulateParams {
  uint64_t InputBase = 0;
  uint64_t InputBytes = 0;
  uint32_t ReadsPerItem = 2;
  uint8_t ReadSize = 4;
  uint64_t AccumBase = 0;
  uint64_t AccumBytes = 8;
  uint32_t WritesPerItem = 1;
  uint32_t ComputePerItem = 4;
  uint64_t Items = 0;
};
Generator<ThreadEvent> accumulateLoop(AccumulateParams Params);

/// Mostly-compute loop touching a small private region occasionally; used
/// by the compute-bound models (swaptions, facesim).
Generator<ThreadEvent> computeLoop(uint64_t ScratchBase,
                                   uint64_t ScratchBytes, uint64_t Iterations,
                                   uint32_t ComputePerIteration,
                                   uint32_t AccessEvery);

/// NUMA first-touch pattern: one 8-byte write per \p PageBytes stride over
/// [Base, Base + Bytes). Under first-touch placement this homes every
/// touched page on the issuing thread's node without the cost of a full
/// initialization — the "numactl --localalloc" idiom expressed as an
/// access pattern.
Generator<ThreadEvent> pageFirstTouch(uint64_t Base, uint64_t Bytes,
                                      uint64_t PageBytes,
                                      uint32_t ComputePerTouch = 1);

/// Repeated read-modify-write hammering of one address (the Figure-1 inner
/// loop, reusable): \p Iterations single-word writes with
/// \p ComputePerWrite instructions between them.
Generator<ThreadEvent> hammerSlot(uint64_t Address, uint64_t Iterations,
                                  uint32_t ComputePerWrite = 3,
                                  uint8_t AccessSize = 4);

} // namespace workloads
} // namespace cheetah

#endif // CHEETAH_WORKLOADS_PATTERNS_H
