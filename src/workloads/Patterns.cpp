//===- workloads/Patterns.cpp - Shared access-pattern coroutines ---------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Patterns.h"

using namespace cheetah;
using namespace cheetah::workloads;

Generator<ThreadEvent>
cheetah::workloads::writeInit(uint64_t Base, uint64_t Bytes,
                              uint32_t ComputePerAccess, uint8_t AccessSize) {
  for (uint64_t Offset = 0; Offset < Bytes; Offset += AccessSize) {
    if (ComputePerAccess)
      co_yield ThreadEvent::compute(ComputePerAccess);
    co_yield ThreadEvent::write(Base + Offset, AccessSize);
  }
}

Generator<ThreadEvent>
cheetah::workloads::readScan(uint64_t Base, uint64_t Bytes, uint32_t Repeats,
                             uint32_t ComputePerAccess, uint8_t AccessSize) {
  for (uint32_t Pass = 0; Pass < Repeats; ++Pass)
    for (uint64_t Offset = 0; Offset < Bytes; Offset += AccessSize) {
      if (ComputePerAccess)
        co_yield ThreadEvent::compute(ComputePerAccess);
      co_yield ThreadEvent::read(Base + Offset, AccessSize);
    }
}

Generator<ThreadEvent>
cheetah::workloads::accumulateLoop(AccumulateParams Params) {
  uint64_t InputCursor = 0;
  uint64_t AccumSlots = Params.AccumBytes / 8;
  if (AccumSlots == 0)
    AccumSlots = 1;
  for (uint64_t Item = 0; Item < Params.Items; ++Item) {
    for (uint32_t R = 0; R < Params.ReadsPerItem; ++R) {
      co_yield ThreadEvent::read(Params.InputBase + InputCursor,
                                 Params.ReadSize);
      InputCursor += Params.ReadSize;
      if (InputCursor >= Params.InputBytes)
        InputCursor = 0;
    }
    if (Params.ComputePerItem)
      co_yield ThreadEvent::compute(Params.ComputePerItem);
    for (uint32_t W = 0; W < Params.WritesPerItem; ++W) {
      uint64_t Slot = (Item + W) % AccumSlots;
      co_yield ThreadEvent::write(Params.AccumBase + Slot * 8, 8);
    }
  }
}

Generator<ThreadEvent>
cheetah::workloads::pageFirstTouch(uint64_t Base, uint64_t Bytes,
                                   uint64_t PageBytes,
                                   uint32_t ComputePerTouch) {
  for (uint64_t Offset = 0; Offset < Bytes; Offset += PageBytes) {
    if (ComputePerTouch)
      co_yield ThreadEvent::compute(ComputePerTouch);
    co_yield ThreadEvent::write(Base + Offset, 8);
  }
}

Generator<ThreadEvent>
cheetah::workloads::hammerSlot(uint64_t Address, uint64_t Iterations,
                               uint32_t ComputePerWrite, uint8_t AccessSize) {
  for (uint64_t I = 0; I < Iterations; ++I) {
    co_yield ThreadEvent::write(Address, AccessSize);
    if (ComputePerWrite)
      co_yield ThreadEvent::compute(ComputePerWrite);
  }
}

Generator<ThreadEvent>
cheetah::workloads::computeLoop(uint64_t ScratchBase, uint64_t ScratchBytes,
                                uint64_t Iterations,
                                uint32_t ComputePerIteration,
                                uint32_t AccessEvery) {
  if (AccessEvery == 0)
    AccessEvery = 1;
  uint64_t Cursor = 0;
  for (uint64_t I = 0; I < Iterations; ++I) {
    co_yield ThreadEvent::compute(ComputePerIteration);
    if (I % AccessEvery == 0) {
      co_yield ThreadEvent::write(ScratchBase + Cursor, 8);
      Cursor = (Cursor + 8) % (ScratchBytes ? ScratchBytes : 8);
    }
  }
}
