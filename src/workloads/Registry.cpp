//===- workloads/Registry.cpp - Workload registry --------------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/Workloads.h"

using namespace cheetah;
using namespace cheetah::workloads;

std::vector<std::unique_ptr<Workload>>
cheetah::workloads::createAllWorkloads() {
  std::vector<std::unique_ptr<Workload>> All;
  appendPhoenixWorkloads(All);
  appendParsecWorkloads(All);
  appendMicroWorkloads(All);
  appendNumaWorkloads(All);
  return All;
}

std::unique_ptr<Workload>
cheetah::workloads::createWorkload(const std::string &Name) {
  for (auto &Workload : createAllWorkloads())
    if (Workload->name() == Name)
      return std::move(Workload);
  return nullptr;
}

std::vector<std::string> cheetah::workloads::allWorkloadNames() {
  std::vector<std::string> Names;
  for (const auto &Workload : createAllWorkloads())
    Names.push_back(Workload->name());
  return Names;
}
