//===- workloads/Parsec.cpp - PARSEC suite access-pattern models ----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access-pattern models of the nine PARSEC applications the paper
/// evaluates: blackscholes, bodytrack, canneal, facesim, fluidanimate,
/// freqmine, streamcluster, swaptions, x264.
///
/// streamcluster carries the paper's second detected instance (Section
/// 4.2.2): the `work_mem` object at streamcluster.cpp:985 is padded by the
/// PARSEC authors to an *assumed* 32-byte cache line, so with 64-byte lines
/// adjacent threads still share — a mild but real instance (~1.02x at 16
/// threads in Table 1). x264 models 1024 short-lived threads across many
/// frame phases, the second per-thread-setup overhead outlier of Figure 4.
/// fluidanimate exhibits *true* sharing on grid border cells (the words
/// themselves are read by neighbors), a case the classifier must not report
/// as false sharing.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Patterns.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::workloads;

namespace {

uint64_t scaled(uint64_t Base, double Scale, uint64_t Min = 1) {
  double Value = static_cast<double>(Base) * Scale;
  return std::max<uint64_t>(Min, static_cast<uint64_t>(Value));
}

//===----------------------------------------------------------------------===//
// blackscholes
//===----------------------------------------------------------------------===//

Generator<ThreadEvent> blackscholesWorker(uint64_t InputBase,
                                          uint64_t OutputBase,
                                          uint64_t Options) {
  for (uint64_t I = 0; I < Options; ++I) {
    for (int Field = 0; Field < 5; ++Field)
      co_yield ThreadEvent::read(InputBase + I * 40 + Field * 8, 8);
    co_yield ThreadEvent::compute(40);
    co_yield ThreadEvent::write(OutputBase + I * 8, 8);
  }
}

class BlackscholesWorkload : public Workload {
public:
  std::string name() const override { return "blackscholes"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "per-option pricing over private slices; compute heavy, no "
           "false sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t OptionsPerThread = scaled(9000, Config.Scale, 64);
    uint64_t InputBytes = Config.Threads * OptionsPerThread * 40;
    uint64_t OutputBytes = Config.Threads * OptionsPerThread * 8;
    uint64_t Input = Ctx.allocate(InputBytes, "blackscholes.c", 310);
    uint64_t Output = Ctx.allocate(OutputBytes, "blackscholes.c", 312);

    sim::PhaseSpec &Phase = Program.addPhase("price");
    Phase.SerialBody = [=]() {
      return writeInit(Input, std::min<uint64_t>(InputBytes, 256 * 1024), 1,
                       8);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t In = Input + T * OptionsPerThread * 40;
      uint64_t Out = Output + T * OptionsPerThread * 8;
      Phase.ParallelBodies.push_back(
          [=]() { return blackscholesWorker(In, Out, OptionsPerThread); });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// bodytrack
//===----------------------------------------------------------------------===//

Generator<ThreadEvent> bodytrackWorker(uint64_t ModelBase, uint64_t ModelBytes,
                                       uint64_t ParticleBase,
                                       uint64_t Particles) {
  for (uint64_t P = 0; P < Particles; ++P) {
    // Read the shared body model (read-only: clean sharing, no FS).
    co_yield ThreadEvent::read(ModelBase + (P * 32) % ModelBytes, 8);
    co_yield ThreadEvent::read(ModelBase + (P * 32 + 8) % ModelBytes, 8);
    co_yield ThreadEvent::compute(20);
    co_yield ThreadEvent::write(ParticleBase + (P * 8) % 4096, 8);
  }
}

class BodytrackWorkload : public Workload {
public:
  std::string name() const override { return "bodytrack"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "multi-phase particle filtering: shared read-only model, "
           "private particle writes; no false sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    constexpr uint32_t Frames = 2;
    uint64_t ParticlesPerThread = scaled(8000, Config.Scale, 64);
    uint64_t ModelBytes = 64 * 1024;
    uint64_t Model = Ctx.allocate(ModelBytes, "bodytrack/TrackingModel.cpp",
                                  228);
    std::vector<uint64_t> Particles;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Particles.push_back(
          Ctx.allocate(4096, "bodytrack/ParticleFilter.cpp", 74));

    for (uint32_t Frame = 0; Frame < Frames; ++Frame) {
      sim::PhaseSpec &Phase = Program.addPhase("frame" + std::to_string(Frame));
      if (Frame == 0)
        Phase.SerialBody = [=]() { return writeInit(Model, ModelBytes, 1, 8); };
      for (uint32_t T = 0; T < Config.Threads; ++T) {
        uint64_t Particle = Particles[T];
        Phase.ParallelBodies.push_back([=]() {
          return bodytrackWorker(Model, ModelBytes, Particle,
                                 ParticlesPerThread);
        });
      }
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// canneal
//===----------------------------------------------------------------------===//

Generator<ThreadEvent> cannealWorker(uint64_t ElementsBase,
                                     uint64_t ElementCount, uint64_t Swaps,
                                     uint64_t RngSeed) {
  SplitMix64 Rng(RngSeed);
  for (uint64_t S = 0; S < Swaps; ++S) {
    uint64_t A = Rng.nextBelow(ElementCount);
    uint64_t B = Rng.nextBelow(ElementCount);
    co_yield ThreadEvent::read(ElementsBase + A * 8, 8);
    co_yield ThreadEvent::read(ElementsBase + B * 8, 8);
    co_yield ThreadEvent::compute(10);
    co_yield ThreadEvent::write(ElementsBase + A * 8, 8);
    co_yield ThreadEvent::write(ElementsBase + B * 8, 8);
  }
}

class CannealWorkload : public Workload {
public:
  std::string name() const override { return "canneal"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "random element swaps over one large shared array: sparse "
           "line collisions, nothing crosses the significance bar";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t Elements = scaled(200000, Config.Scale, 1024);
    uint64_t Bytes = Elements * 8;
    uint64_t Base = Ctx.allocate(Bytes, "canneal/netlist.cpp", 118);
    uint64_t SwapsPerThread = scaled(12000, Config.Scale, 128);

    sim::PhaseSpec &Phase = Program.addPhase("anneal");
    Phase.SerialBody = [=]() {
      return writeInit(Base, std::min<uint64_t>(Bytes, 256 * 1024), 1, 8);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Seed = Config.Seed * 31 + T;
      Phase.ParallelBodies.push_back(
          [=]() { return cannealWorker(Base, Elements, SwapsPerThread, Seed); });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// facesim
//===----------------------------------------------------------------------===//

class FacesimWorkload : public Workload {
public:
  std::string name() const override { return "facesim"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "compute-dominated mesh kernels over private partitions; no "
           "false sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t Iterations = scaled(50000, Config.Scale, 128);
    std::vector<uint64_t> Scratch;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Scratch.push_back(Ctx.allocate(32 * 1024, "facesim/FACE_DRIVER.cpp",
                                     96));

    sim::PhaseSpec &Phase = Program.addPhase("solve");
    uint64_t First = Scratch[0];
    Phase.SerialBody = [=]() { return writeInit(First, 32 * 1024, 2, 8); };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Region = Scratch[T];
      Phase.ParallelBodies.push_back([=]() {
        return computeLoop(Region, 32 * 1024, Iterations,
                           /*ComputePerIteration=*/24, /*AccessEvery=*/4);
      });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// fluidanimate
//===----------------------------------------------------------------------===//

/// Updates a band of grid cells: writes its own cells, reads the neighbor
/// cell across the band boundary (true sharing: the same words the owner
/// writes are read by the neighbor thread).
Generator<ThreadEvent> fluidanimateWorker(uint64_t GridBase,
                                          uint64_t CellBytes,
                                          uint64_t FirstCell, uint64_t Cells,
                                          uint64_t NeighborCell,
                                          uint32_t Sweeps) {
  for (uint32_t Sweep = 0; Sweep < Sweeps; ++Sweep)
    for (uint64_t C = 0; C < Cells; ++C) {
      uint64_t Cell = GridBase + (FirstCell + C) * CellBytes;
      co_yield ThreadEvent::read(Cell, 8);
      // Border cells also read the neighboring thread's first cell.
      if (C + 1 == Cells)
        co_yield ThreadEvent::read(GridBase + NeighborCell * CellBytes, 8);
      co_yield ThreadEvent::compute(12);
      co_yield ThreadEvent::write(Cell, 8);
      co_yield ThreadEvent::write(Cell + 8, 8);
    }
}

class FluidanimateWorkload : public Workload {
public:
  std::string name() const override { return "fluidanimate"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "grid bands with neighbor reads across borders: genuine "
           "true sharing the classifier must not flag as false sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t CellsPerThread = scaled(6000, Config.Scale, 64);
    uint64_t CellBytes = 32;
    uint64_t TotalCells = Config.Threads * CellsPerThread;
    uint64_t Grid =
        Ctx.allocate(TotalCells * CellBytes, "fluidanimate/pthreads.cpp", 501);

    sim::PhaseSpec &Phase = Program.addPhase("advance");
    Phase.SerialBody = [=]() {
      return writeInit(Grid, std::min<uint64_t>(TotalCells * CellBytes,
                                                256 * 1024),
                       1, 8);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t First = T * CellsPerThread;
      uint64_t Neighbor =
          ((T + 1) % Config.Threads) * CellsPerThread; // wrap-around border
      Phase.ParallelBodies.push_back([=]() {
        return fluidanimateWorker(Grid, CellBytes, First, CellsPerThread,
                                  Neighbor, /*Sweeps=*/2);
      });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// freqmine
//===----------------------------------------------------------------------===//

class FreqmineWorkload : public Workload {
public:
  std::string name() const override { return "freqmine"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "two scan phases over a shared transaction DB with private "
           "counter updates; no false sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t ItemsPerThread = scaled(20000, Config.Scale, 128);
    uint64_t Bytes = Config.Threads * ItemsPerThread * 8;
    uint64_t Db = Ctx.allocate(Bytes, "freqmine/fp_tree.cpp", 1184);
    std::vector<uint64_t> Counters;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Counters.push_back(Ctx.allocate(2048, "freqmine/fp_tree.cpp", 1210));

    for (int Pass = 0; Pass < 2; ++Pass) {
      sim::PhaseSpec &Phase = Program.addPhase("scan" + std::to_string(Pass));
      if (Pass == 0)
        Phase.SerialBody = [=]() {
          return writeInit(Db, std::min<uint64_t>(Bytes, 256 * 1024), 1, 8);
        };
      for (uint32_t T = 0; T < Config.Threads; ++T) {
        AccumulateParams Params;
        Params.InputBase = Db + T * ItemsPerThread * 8;
        Params.InputBytes = ItemsPerThread * 8;
        Params.ReadsPerItem = 1;
        Params.ReadSize = 8;
        Params.AccumBase = Counters[T];
        Params.AccumBytes = 2048;
        Params.WritesPerItem = 1;
        Params.ComputePerItem = 5;
        Params.Items = ItemsPerThread;
        Phase.ParallelBodies.push_back(
            [=]() { return accumulateLoop(Params); });
      }
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// streamcluster
//===----------------------------------------------------------------------===//

/// One long-lived pgain worker (PARSEC workers synchronize on barriers and
/// survive all pgain rounds): per round it evaluates candidate centers over
/// its point slice and accumulates cost terms into its `work_mem` region.
Generator<ThreadEvent> streamclusterWorker(uint64_t PointsBase,
                                           uint64_t Items, uint32_t Rounds,
                                           uint64_t WorkMemRegion,
                                           uint32_t WorkWriteEvery) {
  for (uint32_t Round = 0; Round < Rounds; ++Round)
    for (uint64_t I = 0; I < Items; ++I) {
      co_yield ThreadEvent::read(PointsBase + I * 16, 8);
      co_yield ThreadEvent::read(PointsBase + I * 16 + 8, 8);
      co_yield ThreadEvent::compute(14);
      if (I % WorkWriteEvery == 0) {
        co_yield ThreadEvent::read(WorkMemRegion, 8);
        co_yield ThreadEvent::write(WorkMemRegion, 8);
        co_yield ThreadEvent::write(WorkMemRegion + 8, 8);
      }
    }
}

class StreamclusterWorkload : public Workload {
public:
  std::string name() const override { return "streamcluster"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "work_mem padded to an assumed 32-byte line (streamcluster.cpp:"
           "985): mild false sharing on 64-byte-line machines "
           "(paper Section 4.2.2, Table 1)";
  }
  bool hasSignificantFalseSharing() const override { return true; }
  std::string falseSharingSiteTag() const override {
    return "streamcluster.cpp:985";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    constexpr uint32_t PgainRounds = 5;
    uint64_t ItemsPerThread = scaled(6000, Config.Scale, 64);
    uint64_t PointsBytes = Config.Threads * ItemsPerThread * 16;
    uint64_t Points = Ctx.allocate(PointsBytes, "streamcluster.cpp", 844);

    // The authors' CACHE_LINE macro assumes 32 bytes; the fix pads each
    // thread's region to the *actual* line size.
    uint64_t AssumedLine = 32;
    uint64_t RegionStride =
        Config.FixFalseSharing ? Ctx.Geometry.lineSize() : AssumedLine;
    uint64_t WorkMem = Ctx.allocate(Config.Threads * RegionStride,
                                    "streamcluster.cpp", 985);

    // One parallel phase: PARSEC's workers are created once and reused for
    // every pgain round via barriers, so their caches stay warm and the
    // per-thread work_mem regions keep a stable writer.
    sim::PhaseSpec &Phase = Program.addPhase("pgain");
    Phase.SerialBody = [=]() {
      return writeInit(Points, std::min<uint64_t>(PointsBytes, 128 * 1024), 1,
                       8);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Slice = Points + T * ItemsPerThread * 16;
      uint64_t Region = WorkMem + T * RegionStride;
      Phase.ParallelBodies.push_back([=]() {
        return streamclusterWorker(Slice, ItemsPerThread, PgainRounds, Region,
                                   /*WorkWriteEvery=*/100);
      });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// swaptions
//===----------------------------------------------------------------------===//

class SwaptionsWorkload : public Workload {
public:
  std::string name() const override { return "swaptions"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "private Monte-Carlo simulations; compute dominated, no false "
           "sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t Iterations = scaled(55000, Config.Scale, 128);
    std::vector<uint64_t> Paths;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Paths.push_back(Ctx.allocate(16 * 1024, "swaptions/HJM_Securities.cpp",
                                   341));

    sim::PhaseSpec &Phase = Program.addPhase("simulate");
    uint64_t First = Paths[0];
    Phase.SerialBody = [=]() { return writeInit(First, 16 * 1024, 2, 8); };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Region = Paths[T];
      Phase.ParallelBodies.push_back([=]() {
        return computeLoop(Region, 16 * 1024, Iterations,
                           /*ComputePerIteration=*/30, /*AccessEvery=*/3);
      });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// x264
//===----------------------------------------------------------------------===//

Generator<ThreadEvent> x264Worker(uint64_t FrameBase, uint64_t MacroBlocks,
                                  uint64_t RefBase, uint64_t RefBytes,
                                  uint64_t OutBase) {
  for (uint64_t MB = 0; MB < MacroBlocks; ++MB) {
    co_yield ThreadEvent::read(FrameBase + MB * 16, 8);
    co_yield ThreadEvent::read(RefBase + (MB * 64) % RefBytes, 8);
    co_yield ThreadEvent::compute(16);
    co_yield ThreadEvent::write(OutBase + MB * 8, 8);
  }
}

class X264Workload : public Workload {
public:
  std::string name() const override { return "x264"; }
  std::string suite() const override { return "parsec"; }
  std::string description() const override {
    return "64 frame phases x Threads short-lived workers (1024 threads at "
           "16): the extreme thread-setup overhead case of Figure 4";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    constexpr uint32_t Frames = 64; // 64 x 16 = 1024 threads
    uint64_t MacroBlocksPerThread = scaled(700, Config.Scale, 16);
    uint64_t FrameBytes = Config.Threads * MacroBlocksPerThread * 16;
    uint64_t RefBytes = 128 * 1024;
    uint64_t Frame = Ctx.allocate(FrameBytes, "x264/encoder/encoder.c", 1289);
    uint64_t Ref = Ctx.allocate(RefBytes, "x264/encoder/encoder.c", 1301);
    uint64_t Out = Ctx.allocate(Config.Threads * MacroBlocksPerThread * 8,
                                "x264/encoder/encoder.c", 1337);

    for (uint32_t F = 0; F < Frames; ++F) {
      sim::PhaseSpec &Phase = Program.addPhase("frame" + std::to_string(F));
      if (F == 0)
        Phase.SerialBody = [=]() {
          return writeInit(Frame, std::min<uint64_t>(FrameBytes, 128 * 1024),
                           1, 8);
        };
      for (uint32_t T = 0; T < Config.Threads; ++T) {
        uint64_t Slice = Frame + T * MacroBlocksPerThread * 16;
        uint64_t OutSlice = Out + T * MacroBlocksPerThread * 8;
        Phase.ParallelBodies.push_back([=]() {
          return x264Worker(Slice, MacroBlocksPerThread, Ref, RefBytes,
                            OutSlice);
        });
      }
    }
    return Program;
  }
};

} // namespace

namespace cheetah {
namespace workloads {

void appendParsecWorkloads(std::vector<std::unique_ptr<Workload>> &Out) {
  Out.push_back(std::make_unique<BlackscholesWorkload>());
  Out.push_back(std::make_unique<BodytrackWorkload>());
  Out.push_back(std::make_unique<CannealWorkload>());
  Out.push_back(std::make_unique<FacesimWorkload>());
  Out.push_back(std::make_unique<FluidanimateWorkload>());
  Out.push_back(std::make_unique<FreqmineWorkload>());
  Out.push_back(std::make_unique<StreamclusterWorkload>());
  Out.push_back(std::make_unique<SwaptionsWorkload>());
  Out.push_back(std::make_unique<X264Workload>());
}

} // namespace workloads
} // namespace cheetah
