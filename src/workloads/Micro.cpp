//===- workloads/Micro.cpp - Figure 1 microbenchmark ----------------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1 program: an `int array[total]` where each thread
/// repeatedly increments adjacent elements. With one element per thread all
/// writers hammer the same cache line(s) and the program runs an order of
/// magnitude slower than its linear-speedup expectation; padding each
/// thread's element to its own line restores it.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Patterns.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::workloads;

namespace {

/// threadFunc from Figure 1(a): `for j < Iterations: array[index]++`.
/// On x86 the increment compiles to one read-modify-write instruction and
/// thus one coherence transaction; modeled as a single write.
Generator<ThreadEvent> fig1Worker(uint64_t ElementAddress,
                                  uint64_t Iterations) {
  for (uint64_t J = 0; J < Iterations; ++J) {
    co_yield ThreadEvent::write(ElementAddress, 4);
    co_yield ThreadEvent::compute(3);
  }
}

class Fig1ArrayWorkload : public Workload {
public:
  std::string name() const override { return "fig1_array"; }
  std::string suite() const override { return "micro"; }
  std::string description() const override {
    return "Figure 1: adjacent array elements incremented by different "
           "threads in one cache line; the canonical false-sharing demo";
  }
  bool hasSignificantFalseSharing() const override { return true; }
  std::string falseSharingSiteTag() const override { return "fig1_array"; }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    // Total work is fixed: `total` elements each incremented `Iterations`
    // times, split evenly, so the linear-speedup expectation is T1/T.
    uint64_t TotalElements = std::max<uint64_t>(Config.Threads, 8);
    uint64_t IterationsPerElement = static_cast<uint64_t>(
        std::max(1.0, 40000.0 * Config.Scale));
    uint64_t Stride = Config.FixFalseSharing ? Ctx.Geometry.lineSize() : 4;

    uint64_t Array = Ctx.global("fig1_array", TotalElements * Stride, true);

    uint64_t Window = TotalElements / Config.Threads;
    if (Window == 0)
      Window = 1;

    sim::PhaseSpec &Phase = Program.addPhase("increment");
    Phase.SerialBody = [=]() {
      return writeInit(Array, TotalElements * Stride, 1, 4);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Start = std::min<uint64_t>(TotalElements - 1,
                                          static_cast<uint64_t>(T) * Window);
      uint64_t Elements = T + 1 == Config.Threads
                              ? TotalElements - Start
                              : Window;
      uint64_t First = Array + Start * Stride;
      Phase.ParallelBodies.push_back(
          [=]() { return fig1Window(First, Stride, Elements,
                                    IterationsPerElement); });
    }
    return Program;
  }

private:
  /// Outer loop of threadFunc: walks the thread's window of elements.
  static Generator<ThreadEvent> fig1Window(uint64_t FirstElement,
                                           uint64_t Stride, uint64_t Elements,
                                           uint64_t Iterations) {
    for (uint64_t E = 0; E < Elements; ++E) {
      auto Inner = fig1Worker(FirstElement + E * Stride, Iterations);
      while (Inner.next())
        co_yield Inner.value();
    }
  }
};

} // namespace

namespace cheetah {
namespace workloads {

void appendMicroWorkloads(std::vector<std::unique_ptr<Workload>> &Out) {
  Out.push_back(std::make_unique<Fig1ArrayWorkload>());
}

} // namespace workloads
} // namespace cheetah
