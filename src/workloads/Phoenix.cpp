//===- workloads/Phoenix.cpp - Phoenix suite access-pattern models --------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access-pattern models of the eight Phoenix applications the paper
/// evaluates (Figure 4): histogram, kmeans, linear_regression,
/// matrix_multiply, pca, string_match, reverse_index, word_count.
///
/// linear_regression carries the paper's flagship false-sharing instance
/// (Section 4.2.1): an array of per-thread `lreg_args` accumulator structs
/// allocated in one object at "linear_regression-pthread.c:139"; every
/// thread updates five 8-byte accumulators per input point, and adjacent
/// structs share cache lines until padded. histogram, reverse_index and
/// word_count carry *minor* false-sharing instances — rare writes to
/// adjacent per-thread slots of a shared results object — which sampling
/// misses and whose fix is worth <0.2% (Figure 7).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/Patterns.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::workloads;

namespace {

/// Scales a base count, keeping at least \p Min.
uint64_t scaled(uint64_t Base, double Scale, uint64_t Min = 1) {
  double Value = static_cast<double>(Base) * Scale;
  return std::max<uint64_t>(Min, static_cast<uint64_t>(Value));
}

//===----------------------------------------------------------------------===//
// linear_regression
//===----------------------------------------------------------------------===//

/// One worker of linear_regression: reads its slice of points and folds
/// x/y/xx/yy/xy sums into its `lreg_args` struct.
Generator<ThreadEvent> linearRegressionWorker(uint64_t PointsBase,
                                              uint64_t Items,
                                              uint64_t ArgsAddress,
                                              uint32_t WritesPerItem,
                                              uint32_t ComputePerItem) {
  uint64_t Cursor = 0;
  for (uint64_t Item = 0; Item < Items; ++Item) {
    // args->points[i] (x and y load as one 8-byte quantity)
    co_yield ThreadEvent::read(PointsBase + Cursor, 8);
    Cursor += 8;
    co_yield ThreadEvent::compute(ComputePerItem);
    // The hot accumulator store (SX += ...); the other sums stay in
    // registers within an iteration. WritesPerItem models spill pressure.
    for (uint32_t W = 0; W < WritesPerItem; ++W)
      co_yield ThreadEvent::write(ArgsAddress + 8 * W, 8);
  }
}

class LinearRegressionWorkload : public Workload {
public:
  std::string name() const override { return "linear_regression"; }
  std::string suite() const override { return "phoenix"; }
  std::string description() const override {
    return "per-thread accumulator structs adjacent in one heap object; "
           "severe false sharing until padded (paper Section 4.2.1)";
  }
  bool hasSignificantFalseSharing() const override { return true; }
  std::string falseSharingSiteTag() const override {
    return "linear_regression-pthread.c:139";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t PerThreadItems = scaled(12000, Config.Scale, 64);
    uint64_t LineSize = Ctx.Geometry.lineSize();
    // The hot accumulator of lreg_args; the paper's fix pads the struct
    // with 64 extra bytes so neighbors land on distinct lines. Unfixed, a
    // 64-byte line holds eight threads' hot accumulators, so contention
    // grows with the thread count the way Table 1 reports.
    uint64_t StructStride = Config.FixFalseSharing ? LineSize * 2 : 8;

    // The points come from an mmap'ed input file: the program never writes
    // them, and parallel readers take the first-touch misses (this is why
    // real linear_regression has almost no serial phase).
    uint64_t PointsBytes = Config.Threads * PerThreadItems * 8;
    uint64_t PointsBase =
        Ctx.allocate(PointsBytes, "linear_regression-pthread.c", 112);
    uint64_t ArgsBase = Ctx.allocate(Config.Threads * StructStride,
                                     "linear_regression-pthread.c", 139);

    // Serial phase: parse the input header and set up the argument structs;
    // the re-scan keeps the serial latency average representative of
    // steady-state non-contended accesses (what AverCycles_nofs
    // approximates).
    uint64_t WarmBytes = std::min<uint64_t>(PointsBytes, 64 * 1024);
    sim::PhaseSpec &Phase = Program.addPhase("lreg");
    Phase.SerialBody = [=]() {
      return initThenRescan(PointsBase, WarmBytes, WarmBytes, 5);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Slice = PointsBase + T * PerThreadItems * 8;
      uint64_t Args = ArgsBase + T * StructStride;
      Phase.ParallelBodies.push_back([=]() {
        return linearRegressionWorker(Slice, PerThreadItems, Args,
                                      /*WritesPerItem=*/1,
                                      /*ComputePerItem=*/8);
      });
    }
    return Program;
  }

private:
  /// Serial init followed by a few read passes over a prefix.
  static Generator<ThreadEvent> initThenRescan(uint64_t Base, uint64_t Bytes,
                                               uint64_t RescanBytes,
                                               uint32_t Passes) {
    auto Init = writeInit(Base, Bytes, /*ComputePerAccess=*/1, 8);
    while (Init.next())
      co_yield Init.value();
    auto Rescan = readScan(Base, RescanBytes, Passes, 1, 4);
    while (Rescan.next())
      co_yield Rescan.value();
  }
};

//===----------------------------------------------------------------------===//
// histogram
//===----------------------------------------------------------------------===//

/// One histogram worker: scans pixels of its private image slice, bumps a
/// bin in its private bin array per pixel, and finally flushes its 256 bin
/// totals into the shared results object (the minor false-sharing site).
Generator<ThreadEvent> histogramWorker(uint64_t ImageBase, uint64_t Pixels,
                                       uint64_t BinsBase, uint64_t ResultSlot,
                                       uint64_t RngSeed) {
  SplitMix64 Rng(RngSeed);
  for (uint64_t P = 0; P < Pixels; ++P) {
    co_yield ThreadEvent::read(ImageBase + P * 4, 4);
    co_yield ThreadEvent::compute(2);
    uint64_t Bin = Rng.nextBelow(256);
    co_yield ThreadEvent::write(BinsBase + Bin * 4, 4);
  }
  // Flush phase: 256 rare writes into adjacent per-thread result rows.
  for (uint64_t Bin = 0; Bin < 256; ++Bin) {
    co_yield ThreadEvent::read(BinsBase + Bin * 4, 4);
    co_yield ThreadEvent::write(ResultSlot + (Bin % 4) * 4, 4);
  }
}

class HistogramWorkload : public Workload {
public:
  std::string name() const override { return "histogram"; }
  std::string suite() const override { return "phoenix"; }
  std::string description() const override {
    return "private pixel scans and bin updates; rare flush writes to "
           "adjacent per-thread result slots (minor FS, Figure 7)";
  }
  bool hasMinorFalseSharing() const override { return true; }
  std::string falseSharingSiteTag() const override {
    return "histogram_results";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t PixelsPerThread = scaled(40000, Config.Scale, 256);
    uint64_t ImageBytes = Config.Threads * PixelsPerThread * 4;
    uint64_t ImageBase = Ctx.allocate(ImageBytes, "histogram-pthread.c", 153);

    // Per-thread private bin arrays: separate allocations (the Cheetah heap
    // keeps them on distinct lines anyway).
    std::vector<uint64_t> Bins;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Bins.push_back(Ctx.allocate(256 * 4, "histogram-pthread.c", 199));

    // The shared results object: one 16-byte row per thread. Unfixed rows
    // are adjacent (several per line); the fix pads each row to a line.
    uint64_t RowStride =
        Config.FixFalseSharing ? Ctx.Geometry.lineSize() : 16;
    uint64_t ResultsBase = Ctx.global("histogram_results",
                                      Config.Threads * RowStride, true);

    sim::PhaseSpec &Phase = Program.addPhase("hist");
    uint64_t InitBytes = std::min<uint64_t>(ImageBytes, 256 * 1024);
    Phase.SerialBody = [=]() { return writeInit(ImageBase, InitBytes, 1, 8); };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Slice = ImageBase + T * PixelsPerThread * 4;
      uint64_t Slot = ResultsBase + T * RowStride;
      uint64_t BinBase = Bins[T];
      uint64_t Seed = Config.Seed + T;
      Phase.ParallelBodies.push_back([=]() {
        return histogramWorker(Slice, PixelsPerThread, BinBase, Slot, Seed);
      });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// kmeans
//===----------------------------------------------------------------------===//

/// One kmeans worker for one iteration: reads its points slice, computes
/// distances, accumulates into its private partial-centroid block.
Generator<ThreadEvent> kmeansWorker(uint64_t PointsBase, uint64_t Points,
                                    uint64_t PartialBase,
                                    uint64_t PartialBytes) {
  for (uint64_t P = 0; P < Points; ++P) {
    co_yield ThreadEvent::read(PointsBase + P * 8, 8);
    co_yield ThreadEvent::compute(8);
    co_yield ThreadEvent::write(PartialBase + (P * 8) % PartialBytes, 8);
  }
}

class KmeansWorkload : public Workload {
public:
  std::string name() const override { return "kmeans"; }
  std::string suite() const override { return "phoenix"; }
  std::string description() const override {
    return "14 fork-join iterations x Threads workers (224 threads at 16): "
           "the per-thread PMU-setup overhead outlier of Figure 4";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    constexpr uint32_t Iterations = 14; // 14 x 16 = 224 threads
    uint64_t PointsPerThread = scaled(6000, Config.Scale, 64);
    uint64_t PointsBytes = Config.Threads * PointsPerThread * 8;
    uint64_t PointsBase = Ctx.allocate(PointsBytes, "kmeans.c", 402);

    std::vector<uint64_t> Partials;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Partials.push_back(Ctx.allocate(4096, "kmeans.c", 431));

    for (uint32_t Iter = 0; Iter < Iterations; ++Iter) {
      sim::PhaseSpec &Phase = Program.addPhase("iter" + std::to_string(Iter));
      if (Iter == 0)
        Phase.SerialBody = [=]() {
          return writeInit(PointsBase, std::min<uint64_t>(PointsBytes, 128 * 1024),
                           1, 8);
        };
      else
        // Between iterations the main thread re-reads the partials
        // (centroid recomputation).
        Phase.SerialBody = [=, Partial = Partials]() {
          return readScan(Partial[0], 4096, 1, 2, 8);
        };
      for (uint32_t T = 0; T < Config.Threads; ++T) {
        uint64_t Slice = PointsBase + T * PointsPerThread * 8;
        uint64_t Partial = Partials[T];
        Phase.ParallelBodies.push_back([=]() {
          return kmeansWorker(Slice, PointsPerThread, Partial, 4096);
        });
      }
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// matrix_multiply
//===----------------------------------------------------------------------===//

/// Computes a band of C = A*B rows: per output element, a row of A
/// (sequential) and a column of B (strided) are read.
Generator<ThreadEvent> matmulWorker(uint64_t ABase, uint64_t BBase,
                                    uint64_t CBase, uint64_t N,
                                    uint64_t RowBegin, uint64_t RowEnd) {
  for (uint64_t I = RowBegin; I < RowEnd; ++I)
    for (uint64_t J = 0; J < N; ++J) {
      for (uint64_t K = 0; K < N; ++K) {
        co_yield ThreadEvent::read(ABase + (I * N + K) * 8, 8);
        co_yield ThreadEvent::read(BBase + (K * N + J) * 8, 8);
        if (K % 8 == 7)
          co_yield ThreadEvent::compute(8);
      }
      co_yield ThreadEvent::write(CBase + (I * N + J) * 8, 8);
    }
}

class MatrixMultiplyWorkload : public Workload {
public:
  std::string name() const override { return "matrix_multiply"; }
  std::string suite() const override { return "phoenix"; }
  std::string description() const override {
    return "blocked matmul: heavy shared read-only traffic on B, private "
           "output rows; no false sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t N = scaled(72, std::sqrt(Config.Scale), 8);
    uint64_t Bytes = N * N * 8;
    uint64_t ABase = Ctx.allocate(Bytes, "matrix_multiply.c", 87);
    uint64_t BBase = Ctx.allocate(Bytes, "matrix_multiply.c", 88);
    uint64_t CBase = Ctx.allocate(Bytes, "matrix_multiply.c", 89);

    sim::PhaseSpec &Phase = Program.addPhase("mm");
    Phase.SerialBody = [=]() {
      return writeInit(ABase, Bytes * 2, 1, 8); // A then B (contiguous)
    };
    uint64_t RowsPerThread = std::max<uint64_t>(1, N / Config.Threads);
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Begin = std::min<uint64_t>(N, T * RowsPerThread);
      uint64_t End =
          T + 1 == Config.Threads ? N : std::min(N, Begin + RowsPerThread);
      Phase.ParallelBodies.push_back(
          [=]() { return matmulWorker(ABase, BBase, CBase, N, Begin, End); });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// pca
//===----------------------------------------------------------------------===//

class PcaWorkload : public Workload {
public:
  std::string name() const override { return "pca"; }
  std::string suite() const override { return "phoenix"; }
  std::string description() const override {
    return "two fork-join phases (means then covariance) over a shared "
           "read-only matrix with private accumulators; no false sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t RowsPerThread = scaled(48, Config.Scale, 2);
    uint64_t Cols = 512;
    uint64_t Bytes = Config.Threads * RowsPerThread * Cols * 8;
    uint64_t Matrix = Ctx.allocate(Bytes, "pca.c", 141);

    std::vector<uint64_t> Accums;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Accums.push_back(Ctx.allocate(512, "pca.c", 166));

    for (int PhaseIndex = 0; PhaseIndex < 2; ++PhaseIndex) {
      sim::PhaseSpec &Phase =
          Program.addPhase(PhaseIndex == 0 ? "mean" : "cov");
      if (PhaseIndex == 0)
        Phase.SerialBody = [=]() {
          return writeInit(Matrix, std::min<uint64_t>(Bytes, 256 * 1024), 1,
                           8);
        };
      for (uint32_t T = 0; T < Config.Threads; ++T) {
        AccumulateParams Params;
        Params.InputBase = Matrix + T * RowsPerThread * Cols * 8;
        Params.InputBytes = RowsPerThread * Cols * 8;
        Params.ReadsPerItem = 2;
        Params.ReadSize = 8;
        Params.AccumBase = Accums[T];
        Params.AccumBytes = 512;
        Params.WritesPerItem = 1;
        Params.ComputePerItem = PhaseIndex == 0 ? 3 : 8;
        Params.Items = RowsPerThread * Cols / 2;
        Phase.ParallelBodies.push_back(
            [=]() { return accumulateLoop(Params); });
      }
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// string_match
//===----------------------------------------------------------------------===//

class StringMatchWorkload : public Workload {
public:
  std::string name() const override { return "string_match"; }
  std::string suite() const override { return "phoenix"; }
  std::string description() const override {
    return "read-dominated key scanning with rare private match-flag "
           "writes; no false sharing";
  }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t KeysPerThread = scaled(30000, Config.Scale, 128);
    uint64_t KeyBytes = 16;
    uint64_t Bytes = Config.Threads * KeysPerThread * KeyBytes;
    uint64_t Keys = Ctx.allocate(Bytes, "string_match.c", 204);

    std::vector<uint64_t> Flags;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Flags.push_back(Ctx.allocate(128, "string_match.c", 247));

    sim::PhaseSpec &Phase = Program.addPhase("match");
    Phase.SerialBody = [=]() {
      return writeInit(Keys, std::min<uint64_t>(Bytes, 256 * 1024), 1, 8);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      AccumulateParams Params;
      Params.InputBase = Keys + T * KeysPerThread * KeyBytes;
      Params.InputBytes = KeysPerThread * KeyBytes;
      Params.ReadsPerItem = 4; // 16-byte key, 4-byte compares
      Params.ReadSize = 4;
      Params.AccumBase = Flags[T];
      Params.AccumBytes = 128;
      Params.WritesPerItem = 0;
      Params.ComputePerItem = 6;
      Params.Items = KeysPerThread;
      Phase.ParallelBodies.push_back([=]() { return accumulateLoop(Params); });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// reverse_index
//===----------------------------------------------------------------------===//

/// One reverse_index worker: scans links, appends to a private list chunk,
/// and occasionally bumps its slot in the shared index header (minor FS).
Generator<ThreadEvent> reverseIndexWorker(uint64_t LinksBase, uint64_t Links,
                                          uint64_t ListBase,
                                          uint64_t ListBytes,
                                          uint64_t HeaderSlot,
                                          uint64_t HeaderEvery) {
  uint64_t ListCursor = 0;
  for (uint64_t L = 0; L < Links; ++L) {
    co_yield ThreadEvent::read(LinksBase + L * 8, 8);
    co_yield ThreadEvent::compute(4);
    if (L % 4 == 0) {
      co_yield ThreadEvent::write(ListBase + ListCursor, 8);
      ListCursor = (ListCursor + 8) % ListBytes;
    }
    if (L % HeaderEvery == 0)
      co_yield ThreadEvent::write(HeaderSlot, 8);
  }
}

class ReverseIndexWorkload : public Workload {
public:
  std::string name() const override { return "reverse_index"; }
  std::string suite() const override { return "phoenix"; }
  std::string description() const override {
    return "link scanning with private list appends; rare writes to "
           "adjacent per-thread header slots (minor FS, Figure 7)";
  }
  bool hasMinorFalseSharing() const override { return true; }
  std::string falseSharingSiteTag() const override { return "ridx_header"; }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t LinksPerThread = scaled(40000, Config.Scale, 256);
    uint64_t Bytes = Config.Threads * LinksPerThread * 8;
    uint64_t Links = Ctx.allocate(Bytes, "reverse_index.c", 318);

    uint64_t SlotStride = Config.FixFalseSharing ? Ctx.Geometry.lineSize() : 8;
    uint64_t Header =
        Ctx.global("ridx_header", Config.Threads * SlotStride, true);

    std::vector<uint64_t> Lists;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Lists.push_back(Ctx.allocate(16 * 1024, "reverse_index.c", 342));

    sim::PhaseSpec &Phase = Program.addPhase("ridx");
    Phase.SerialBody = [=]() {
      return writeInit(Links, std::min<uint64_t>(Bytes, 256 * 1024), 1, 8);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Slice = Links + T * LinksPerThread * 8;
      uint64_t Slot = Header + T * SlotStride;
      uint64_t List = Lists[T];
      Phase.ParallelBodies.push_back([=]() {
        return reverseIndexWorker(Slice, LinksPerThread, List, 16 * 1024,
                                  Slot, /*HeaderEvery=*/1024);
      });
    }
    return Program;
  }
};

//===----------------------------------------------------------------------===//
// word_count
//===----------------------------------------------------------------------===//

/// One word_count worker: scans words, bumps private hash counters, and
/// occasionally updates its slot in a shared progress array (minor FS).
Generator<ThreadEvent> wordCountWorker(uint64_t TextBase, uint64_t Words,
                                       uint64_t HashBase, uint64_t HashBytes,
                                       uint64_t ProgressSlot,
                                       uint64_t ProgressEvery,
                                       uint64_t RngSeed) {
  SplitMix64 Rng(RngSeed);
  for (uint64_t W = 0; W < Words; ++W) {
    co_yield ThreadEvent::read(TextBase + W * 8, 8);
    co_yield ThreadEvent::compute(5);
    uint64_t Bucket = Rng.nextBelow(HashBytes / 8);
    co_yield ThreadEvent::read(HashBase + Bucket * 8, 8);
    co_yield ThreadEvent::write(HashBase + Bucket * 8, 8);
    if (W % ProgressEvery == 0)
      co_yield ThreadEvent::write(ProgressSlot, 8);
  }
}

class WordCountWorkload : public Workload {
public:
  std::string name() const override { return "word_count"; }
  std::string suite() const override { return "phoenix"; }
  std::string description() const override {
    return "word scanning with private hash updates; rare writes to "
           "adjacent per-thread progress slots (minor FS, Figure 7)";
  }
  bool hasMinorFalseSharing() const override { return true; }
  std::string falseSharingSiteTag() const override { return "wc_progress"; }

  sim::ForkJoinProgram build(WorkloadContext &Ctx,
                             const WorkloadConfig &Config) const override {
    sim::ForkJoinProgram Program;
    Program.Name = name();

    uint64_t WordsPerThread = scaled(30000, Config.Scale, 256);
    uint64_t Bytes = Config.Threads * WordsPerThread * 8;
    uint64_t Text = Ctx.allocate(Bytes, "word_count.c", 221);

    uint64_t SlotStride = Config.FixFalseSharing ? Ctx.Geometry.lineSize() : 8;
    uint64_t Progress =
        Ctx.global("wc_progress", Config.Threads * SlotStride, true);

    std::vector<uint64_t> Hashes;
    for (uint32_t T = 0; T < Config.Threads; ++T)
      Hashes.push_back(Ctx.allocate(8 * 1024, "word_count.c", 265));

    sim::PhaseSpec &Phase = Program.addPhase("wc");
    Phase.SerialBody = [=]() {
      return writeInit(Text, std::min<uint64_t>(Bytes, 256 * 1024), 1, 8);
    };
    for (uint32_t T = 0; T < Config.Threads; ++T) {
      uint64_t Slice = Text + T * WordsPerThread * 8;
      uint64_t Slot = Progress + T * SlotStride;
      uint64_t Hash = Hashes[T];
      uint64_t Seed = Config.Seed + 7919 * T;
      Phase.ParallelBodies.push_back([=]() {
        return wordCountWorker(Slice, WordsPerThread, Hash, 8 * 1024, Slot,
                               /*ProgressEvery=*/1024, Seed);
      });
    }
    return Program;
  }
};

} // namespace

namespace cheetah {
namespace workloads {

void appendPhoenixWorkloads(std::vector<std::unique_ptr<Workload>> &Out) {
  Out.push_back(std::make_unique<HistogramWorkload>());
  Out.push_back(std::make_unique<KmeansWorkload>());
  Out.push_back(std::make_unique<LinearRegressionWorkload>());
  Out.push_back(std::make_unique<MatrixMultiplyWorkload>());
  Out.push_back(std::make_unique<PcaWorkload>());
  Out.push_back(std::make_unique<StringMatchWorkload>());
  Out.push_back(std::make_unique<ReverseIndexWorkload>());
  Out.push_back(std::make_unique<WordCountWorkload>());
}

} // namespace workloads
} // namespace cheetah
