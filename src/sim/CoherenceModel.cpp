//===- sim/CoherenceModel.cpp - Private-cache coherence model ------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/CoherenceModel.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::sim;

const char *cheetah::sim::accessOutcomeName(AccessOutcome Outcome) {
  switch (Outcome) {
  case AccessOutcome::LocalHit:
    return "local-hit";
  case AccessOutcome::ColdMiss:
    return "cold-miss";
  case AccessOutcome::CleanTransfer:
    return "clean-transfer";
  case AccessOutcome::DirtyTransfer:
    return "dirty-transfer";
  case AccessOutcome::Upgrade:
    return "upgrade";
  }
  return "unknown";
}

CoherenceModel::LineState &CoherenceModel::lineFor(uint64_t Address) {
  return Lines[Geometry.lineIndex(Address)];
}

bool CoherenceModel::holds(const LineState &Line, ThreadId Tid) {
  return std::binary_search(Line.Holders.begin(), Line.Holders.end(), Tid);
}

void CoherenceModel::addHolder(LineState &Line, ThreadId Tid) {
  auto It = std::lower_bound(Line.Holders.begin(), Line.Holders.end(), Tid);
  if (It == Line.Holders.end() || *It != Tid)
    Line.Holders.insert(It, Tid);
}

CoherenceResult CoherenceModel::access(ThreadId Tid,
                                       const MemoryAccess &Access,
                                       uint64_t Now) {
  LineState &Line = lineFor(Access.Address);
  CoherenceResult Result;
  ++Stats.Accesses;

  bool Held = holds(Line, Tid);
  bool OthersHold = Line.Holders.size() > (Held ? 1u : 0u);
  bool EverTouched = !Line.Holders.empty() || Line.Dirty;

  if (Access.Kind == AccessKind::Read) {
    if (Held) {
      Result.Outcome = AccessOutcome::LocalHit;
    } else if (!EverTouched) {
      Result.Outcome = AccessOutcome::ColdMiss;
    } else if (Line.Dirty && OthersHold) {
      // Another core holds the line modified: dirty cache-to-cache transfer.
      // The supplier's copy downgrades to shared; the line is now clean.
      Result.Outcome = AccessOutcome::DirtyTransfer;
      Line.Dirty = false;
    } else if (OthersHold) {
      Result.Outcome = AccessOutcome::CleanTransfer;
    } else {
      // Touched in the past but no current holder (everyone was
      // invalidated and the writer itself re-read elsewhere): with infinite
      // caches this means a fetch from the shared level, model as clean
      // transfer cost.
      Result.Outcome = AccessOutcome::CleanTransfer;
    }
    addHolder(Line, Tid);
  } else {
    // Write: every other holder must be invalidated.
    uint32_t Victims =
        static_cast<uint32_t>(Line.Holders.size()) - (Held ? 1u : 0u);
    if (Held && Victims == 0) {
      // Exclusive (or modified) in our cache already.
      Result.Outcome = AccessOutcome::LocalHit;
    } else if (Held) {
      // We hold it shared; upgrade to exclusive.
      Result.Outcome = AccessOutcome::Upgrade;
    } else if (!EverTouched) {
      Result.Outcome = AccessOutcome::ColdMiss;
    } else if (Line.Dirty && Victims > 0) {
      Result.Outcome = AccessOutcome::DirtyTransfer;
    } else {
      Result.Outcome = AccessOutcome::CleanTransfer;
    }
    Result.Invalidated = Victims;
    Stats.InvalidationsSent += Victims;
    Line.Holders.clear();
    Line.Holders.push_back(Tid);
    Line.Dirty = true;
  }

  uint64_t Cost = Latency.baseCost(Result.Outcome);
  if (LatencyModel::involvesCoherence(Result.Outcome)) {
    // Coherence transactions serialize on the line's directory slot: a
    // request issued while a previous transfer is still in flight waits for
    // it. This is the queueing effect that makes N contending writers see
    // latency grow with N — saturating once the directory pipeline absorbs
    // the backlog.
    uint64_t MaxWait =
        static_cast<uint64_t>(Latency.MaxQueuedServices) *
        Latency.LineServiceCycles;
    uint64_t Start = std::max(Now, std::min(Line.BusyUntil, Now + MaxWait));
    uint64_t Finish = Start + Latency.LineServiceCycles;
    Line.BusyUntil = Finish;
    Cost += Finish - Now;
  }
  Result.LatencyCycles = Cost;
  Stats.TotalLatency += Cost;

  switch (Result.Outcome) {
  case AccessOutcome::LocalHit:
    ++Stats.LocalHits;
    break;
  case AccessOutcome::ColdMiss:
    ++Stats.ColdMisses;
    break;
  case AccessOutcome::CleanTransfer:
    ++Stats.CleanTransfers;
    break;
  case AccessOutcome::DirtyTransfer:
    ++Stats.DirtyTransfers;
    break;
  case AccessOutcome::Upgrade:
    ++Stats.Upgrades;
    break;
  }
  return Result;
}

void CoherenceModel::reset() {
  Lines.clear();
  Stats = CoherenceStats();
}

std::vector<ThreadId> CoherenceModel::holdersOf(uint64_t Address) const {
  auto It = Lines.find(Geometry.lineIndex(Address));
  if (It == Lines.end())
    return {};
  return It->second.Holders;
}
