//===- sim/ForkJoinProgram.h - Fork-join program description ----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Describes a fork-join application as the paper's Figure 3 draws it: an
/// alternating sequence of serial phases (main thread only) and parallel
/// phases (a batch of child threads created, run, and joined). Each body is
/// a factory returning a coroutine that yields the thread's instruction
/// stream. All evaluated applications in the paper follow this model; the
/// assessment engine (Section 3.3) depends on it.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SIM_FORKJOINPROGRAM_H
#define CHEETAH_SIM_FORKJOINPROGRAM_H

#include "mem/MemoryAccess.h"
#include "support/Generator.h"

#include <functional>
#include <string>
#include <vector>

namespace cheetah {
namespace sim {

/// A factory producing the instruction stream of one thread. Factories (not
/// generators directly) so a program can be executed more than once.
using ThreadBody = std::function<Generator<ThreadEvent>()>;

/// One serial+parallel step of a fork-join program.
struct PhaseSpec {
  /// Optional label used in reports and traces.
  std::string Name;
  /// Work the main thread performs before forking (may be null).
  ThreadBody SerialBody;
  /// Child threads forked for this phase; joined before the next phase.
  std::vector<ThreadBody> ParallelBodies;
};

/// A whole application: phases executed in order. A trailing serial phase is
/// expressed as a PhaseSpec with no ParallelBodies.
struct ForkJoinProgram {
  std::string Name;
  std::vector<PhaseSpec> Phases;

  /// Appends a phase and returns it for in-place construction.
  PhaseSpec &addPhase(std::string PhaseName) {
    Phases.push_back(PhaseSpec{std::move(PhaseName), nullptr, {}});
    return Phases.back();
  }

  /// Total number of child threads across all phases.
  size_t totalChildThreads() const {
    size_t N = 0;
    for (const PhaseSpec &Phase : Phases)
      N += Phase.ParallelBodies.size();
    return N;
  }
};

} // namespace sim
} // namespace cheetah

#endif // CHEETAH_SIM_FORKJOINPROGRAM_H
