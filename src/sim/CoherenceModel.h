//===- sim/CoherenceModel.h - Private-cache coherence model -----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directory-style invalidation coherence model matching the paper's two
/// assumptions (Section 2): every thread runs on its own core with a private
/// cache, and caches are infinite (no capacity evictions). A line is held by
/// a set of cores; a write invalidates every other holder. Contended lines
/// serialize ownership transfers through a per-line busy window, so the cost
/// of false sharing grows with the number of concurrent writers — the
/// physical effect behind Figure 1's 13x degradation.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SIM_COHERENCEMODEL_H
#define CHEETAH_SIM_COHERENCEMODEL_H

#include "mem/CacheGeometry.h"
#include "mem/MemoryAccess.h"
#include "sim/LatencyModel.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cheetah {
namespace sim {

/// Result of presenting one access to the coherence model.
struct CoherenceResult {
  AccessOutcome Outcome = AccessOutcome::LocalHit;
  /// Total cycles the access took, including any time spent queued behind
  /// other transfers of the same line.
  uint64_t LatencyCycles = 0;
  /// Number of other cores whose copies were invalidated by this access.
  uint32_t Invalidated = 0;
};

/// Aggregate counters over one simulation, used by tests and benchmarks.
struct CoherenceStats {
  uint64_t Accesses = 0;
  uint64_t LocalHits = 0;
  uint64_t ColdMisses = 0;
  uint64_t CleanTransfers = 0;
  uint64_t DirtyTransfers = 0;
  uint64_t Upgrades = 0;
  uint64_t InvalidationsSent = 0;
  uint64_t TotalLatency = 0;
};

/// Tracks, for every touched cache line, which cores hold a valid copy and
/// whether one of them holds it modified.
class CoherenceModel {
public:
  CoherenceModel(const CacheGeometry &Geometry, const LatencyModel &Latency)
      : Geometry(Geometry), Latency(Latency) {}

  /// Presents one access by \p Tid at virtual time \p Now.
  /// \returns the outcome and total latency (base cost + queueing delay).
  CoherenceResult access(ThreadId Tid, const MemoryAccess &Access,
                         uint64_t Now);

  /// Counters accumulated since construction or the last reset.
  const CoherenceStats &stats() const { return Stats; }

  /// Clears all line state and counters.
  void reset();

  /// Number of distinct cache lines ever touched.
  size_t touchedLines() const { return Lines.size(); }

  /// \returns the holders of the line containing \p Address (for tests).
  std::vector<ThreadId> holdersOf(uint64_t Address) const;

private:
  /// Per-line directory entry. Holders is kept sorted and deduplicated; it
  /// is tiny for private data and grows only for genuinely shared lines.
  struct LineState {
    std::vector<ThreadId> Holders;
    bool Dirty = false;
    /// Virtual time until which the line's directory slot is busy serving a
    /// previous ownership transfer.
    uint64_t BusyUntil = 0;
  };

  LineState &lineFor(uint64_t Address);
  static bool holds(const LineState &Line, ThreadId Tid);
  static void addHolder(LineState &Line, ThreadId Tid);

  CacheGeometry Geometry;
  LatencyModel Latency;
  std::unordered_map<uint64_t, LineState> Lines;
  CoherenceStats Stats;
};

} // namespace sim
} // namespace cheetah

#endif // CHEETAH_SIM_COHERENCEMODEL_H
