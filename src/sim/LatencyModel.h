//===- sim/LatencyModel.h - Memory latency model ----------------*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Latency parameters for the simulated memory hierarchy. The absolute
/// values are calibrated so the *shapes* of the paper's results reproduce
/// (Figure 1's super-linear degradation, Table 1's predictable recovery);
/// they approximate a mid-2010s AMD Opteron like the paper's testbed.
///
/// The model distinguishes the outcomes Cheetah's assessment depends on:
/// cheap local hits versus expensive coherence activity. Contended lines
/// additionally serialize ownership transfers (see CoherenceModel), which is
/// what makes the cost of false sharing grow with the number of writers.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SIM_LATENCYMODEL_H
#define CHEETAH_SIM_LATENCYMODEL_H

#include <cstdint>

namespace cheetah {
namespace sim {

/// How the memory system resolved an access.
enum class AccessOutcome : uint8_t {
  /// Line valid in the requesting core's private cache.
  LocalHit,
  /// First-ever touch of the line: fetched from DRAM.
  ColdMiss,
  /// Line supplied by another core's cache in a clean state.
  CleanTransfer,
  /// Line supplied by another core that held it modified (the false-sharing
  /// signature: a dirty cache-to-cache transfer plus invalidation).
  DirtyTransfer,
  /// The requester already held the line shared and needed ownership to
  /// write (read-for-ownership upgrade).
  Upgrade,
};

/// \returns a short human-readable name for \p Outcome.
const char *accessOutcomeName(AccessOutcome Outcome);

/// Cycle costs of each access outcome plus execution-engine parameters.
struct LatencyModel {
  /// Private-cache hit.
  uint32_t LocalHitCycles = 3;
  /// DRAM fetch on a never-before-seen line.
  uint32_t ColdMissCycles = 120;
  /// Clean cache-to-cache transfer.
  uint32_t CleanTransferCycles = 40;
  /// Dirty cache-to-cache transfer + invalidation acknowledgement.
  uint32_t DirtyTransferCycles = 50;
  /// Shared-to-exclusive upgrade (invalidate other sharers, keep data).
  uint32_t UpgradeCycles = 30;
  /// Extra cycles when a DRAM fetch is served by a *remote* NUMA node's
  /// memory controller (first-touch page home != accessor's node). Only
  /// applied on multi-node topologies; zero-node-distance accesses never
  /// pay it.
  uint32_t RemoteDramExtraCycles = 90;
  /// Extra cycles for coherence activity (transfers, upgrades) on a page
  /// whose *home directory* lives on another node. This models a
  /// home-node directory protocol: the request is ordered through the
  /// home node's directory regardless of where the supplying cache sits
  /// (the 3-hop case), so locality is keyed to the page home, not to the
  /// current holder.
  uint32_t RemoteTransferExtraCycles = 30;
  /// Extra cycles per *store* to a page homed on another node, even when
  /// the line hits in the writer's private cache. Stores eventually drain
  /// to the home node's memory controller; with the model's infinite
  /// write-back caches that drain would otherwise be invisible, so it is
  /// charged per store (the store buffer caps outstanding remote
  /// write-backs, making the drain a steady per-store cost on real
  /// machines). This is the recurring cost a first-touch or page-placement
  /// fix removes — the signal page-level assessment (EQ.1 for pages)
  /// predicts from.
  uint32_t RemoteStoreExtraCycles = 20;
  /// Per-line serialization cost: each queued ownership transfer occupies
  /// the line's directory slot for this long. Concurrent writers to one
  /// line therefore see latency grow with the number of contenders.
  uint32_t LineServiceCycles = 18;
  /// Maximum backlog (in service slots) a new request can observe: real
  /// directories pipeline deeper backlogs, so waiting time saturates.
  uint32_t MaxQueuedServices = 4;
  /// Cycles per non-memory instruction.
  uint32_t ComputeCyclesPerInstruction = 1;
  /// Cycles the main thread spends creating one child thread.
  uint32_t ThreadSpawnCycles = 8000;
  /// Cycles to join a finished child.
  uint32_t ThreadJoinCycles = 2000;

  /// \returns the base (uncontended) cycle cost of \p Outcome.
  uint32_t baseCost(AccessOutcome Outcome) const {
    switch (Outcome) {
    case AccessOutcome::LocalHit:
      return LocalHitCycles;
    case AccessOutcome::ColdMiss:
      return ColdMissCycles;
    case AccessOutcome::CleanTransfer:
      return CleanTransferCycles;
    case AccessOutcome::DirtyTransfer:
      return DirtyTransferCycles;
    case AccessOutcome::Upgrade:
      return UpgradeCycles;
    }
    return LocalHitCycles;
  }

  /// \returns true if \p Outcome required another core's involvement; these
  /// outcomes queue on the line's serialization slot.
  static bool involvesCoherence(AccessOutcome Outcome) {
    return Outcome == AccessOutcome::CleanTransfer ||
           Outcome == AccessOutcome::DirtyTransfer ||
           Outcome == AccessOutcome::Upgrade;
  }
};

} // namespace sim
} // namespace cheetah

#endif // CHEETAH_SIM_LATENCYMODEL_H
