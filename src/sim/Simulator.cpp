//===- sim/Simulator.cpp - Multicore discrete-event simulator ------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "support/Assert.h"

#include <algorithm>
#include <queue>

using namespace cheetah;
using namespace cheetah::sim;

const ThreadRecord &SimulationResult::thread(ThreadId Tid) const {
  for (const ThreadRecord &Record : Threads)
    if (Record.Tid == Tid)
      return Record;
  CHEETAH_UNREACHABLE("no record for requested thread id");
}

void Simulator::addObserver(SimObserver *Observer) {
  CHEETAH_ASSERT(Observer != nullptr, "null observer");
  Observers.push_back(Observer);
}

uint64_t Simulator::notifyThreadStart(ThreadId Tid, bool IsMain,
                                      uint64_t Now) {
  uint64_t Extra = 0;
  for (SimObserver *Observer : Observers)
    Extra += Observer->onThreadStart(Tid, IsMain, Now);
  return Extra;
}

uint64_t Simulator::notifyAccess(ThreadId Tid, const MemoryAccess &Access,
                                 const CoherenceResult &Result, uint64_t Now) {
  uint64_t Extra = 0;
  for (SimObserver *Observer : Observers)
    Extra += Observer->onMemoryAccess(Tid, Access, Result, Now);
  return Extra;
}

/// A live thread inside one parallel phase (or the main thread during a
/// serial body).
struct Simulator::RunningThread {
  ThreadId Tid = 0;
  Generator<ThreadEvent> Body;
  uint64_t Clock = 0;
  ThreadRecord Record;
};

bool Simulator::step(RunningThread &Thread, CoherenceModel &Coherence,
                     SimulationResult &Result) {
  if (!Thread.Body.next())
    return false;
  const ThreadEvent &Event = Thread.Body.value();
  if (Event.Kind == ThreadEventKind::Compute) {
    uint64_t N = Event.ComputeInstructions;
    Thread.Clock += N * Latency.ComputeCyclesPerInstruction;
    Thread.Record.Instructions += N;
    for (SimObserver *Observer : Observers)
      Observer->onInstructions(Thread.Tid, N);
    return true;
  }

  CoherenceResult Access =
      Coherence.access(Thread.Tid, Event.Access, Thread.Clock);
  if (Topology && Topology->multiNode()) {
    // First-touch placement: the page's home is the node of its first
    // accessor. Cache-missing accesses from any other node detour through
    // the home node (DRAM fetch from its controller, coherence ordered by
    // its directory) and pay the remote surcharge — folded into the access
    // latency so observers (PMU sampling) see the remote-DRAM cost.
    NodeId Node = Topology->nodeOf(Thread.Tid);
    auto [Home, Fresh] =
        PageHomes.try_emplace(Topology->pageIndex(Event.Access.Address), Node);
    (void)Fresh;
    if (Home->second != Node) {
      uint32_t Base = 0;
      if (Access.Outcome == AccessOutcome::ColdMiss)
        Base = Latency.RemoteDramExtraCycles;
      else if (Access.Outcome != AccessOutcome::LocalHit)
        Base = Latency.RemoteTransferExtraCycles;
      else if (Event.Access.Kind == AccessKind::Write)
        // Cache-hitting remote stores still drain to the home node's
        // memory controller; reads served from the local cache stay free.
        Base = Latency.RemoteStoreExtraCycles;
      if (Base) {
        // Hop-proportional interconnect: crossing a farther node pair
        // pays Base scaled by the pair's distance over the minimum remote
        // distance, so uniform (binary local/remote) topologies pay
        // exactly Base and asymmetric ones make far traffic visibly more
        // expensive than near traffic.
        uint64_t Extra =
            Topology->scaledRemoteCycles(Base, Node, Home->second);
        Access.LatencyCycles += Extra;
        ++Result.RemoteNumaAccesses;
        Result.RemoteNumaExtraCycles += Extra;
      }
    }
  }
  Thread.Clock += Access.LatencyCycles;
  Thread.Record.Instructions += 1;
  Thread.Record.MemoryAccesses += 1;
  Thread.Record.MemoryCycles += Access.LatencyCycles;
  // Observer overhead (sampling traps, instrumentation) is charged after the
  // access completes, as a signal handler would run after the instruction.
  Thread.Clock +=
      notifyAccess(Thread.Tid, Event.Access, Access, Thread.Clock);
  return true;
}

SimulationResult Simulator::run(const ForkJoinProgram &Program) {
  SimulationResult Result;
  CoherenceModel Coherence(Geometry, Latency);
  PageHomes.clear();

  ThreadId NextTid = 0;
  uint64_t MainClock = 0;

  // The main thread exists for the whole program.
  RunningThread Main;
  Main.Tid = NextTid++;
  Main.Record.Tid = Main.Tid;
  Main.Record.IsMain = true;
  Main.Record.StartCycle = 0;
  MainClock += notifyThreadStart(Main.Tid, /*IsMain=*/true, MainClock);

  for (size_t PhaseIndex = 0; PhaseIndex < Program.Phases.size();
       ++PhaseIndex) {
    const PhaseSpec &Spec = Program.Phases[PhaseIndex];

    // --- Serial part: run the main thread's body to completion. ---
    if (Spec.SerialBody) {
      PhaseRecord Serial;
      Serial.Name = Spec.Name + "/serial";
      Serial.Parallel = false;
      Serial.StartCycle = MainClock;
      Serial.Members.push_back(Main.Tid);
      for (SimObserver *Observer : Observers)
        Observer->onPhaseBegin(Serial);

      Main.Clock = MainClock;
      Main.Body = Spec.SerialBody();
      while (step(Main, Coherence, Result)) {
      }
      MainClock = Main.Clock;

      Serial.EndCycle = MainClock;
      for (SimObserver *Observer : Observers)
        Observer->onPhaseEnd(Serial);
      Result.Phases.push_back(std::move(Serial));
    }

    if (Spec.ParallelBodies.empty())
      continue;

    // --- Parallel part: fork, interleave by virtual time, join. ---
    PhaseRecord Parallel;
    Parallel.Name = Spec.Name + "/parallel";
    Parallel.Parallel = true;
    Parallel.StartCycle = MainClock;

    std::vector<RunningThread> Children;
    Children.reserve(Spec.ParallelBodies.size());
    for (const ThreadBody &Body : Spec.ParallelBodies) {
      CHEETAH_ASSERT(Body != nullptr, "null parallel thread body");
      RunningThread Child;
      Child.Tid = NextTid++;
      // Thread creation is serialized on the main thread, so later threads
      // start later — visible in the per-thread start cycles.
      MainClock += Latency.ThreadSpawnCycles;
      Child.Clock = MainClock;
      Child.Clock += notifyThreadStart(Child.Tid, /*IsMain=*/false,
                                       Child.Clock);
      Child.Record.Tid = Child.Tid;
      Child.Record.PhaseIndex = static_cast<uint32_t>(PhaseIndex);
      Child.Record.StartCycle = Child.Clock;
      Child.Body = Body();
      Parallel.Members.push_back(Child.Tid);
      Children.push_back(std::move(Child));
    }
    for (SimObserver *Observer : Observers)
      Observer->onPhaseBegin(Parallel);

    // Min-clock scheduling: always advance the thread whose virtual clock is
    // smallest. This interleaves contending threads at instruction
    // granularity, which is what makes ping-pong invalidation patterns
    // emerge the way they do on real hardware.
    using QueueEntry = std::pair<uint64_t, size_t>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        Runnable;
    for (size_t I = 0; I < Children.size(); ++I)
      Runnable.push({Children[I].Clock, I});

    uint64_t PhaseEnd = MainClock;
    while (!Runnable.empty()) {
      auto [Clock, Index] = Runnable.top();
      Runnable.pop();
      RunningThread &Child = Children[Index];
      if (step(Child, Coherence, Result)) {
        Runnable.push({Child.Clock, Index});
        continue;
      }
      // Thread finished.
      Child.Record.EndCycle = Child.Clock;
      PhaseEnd = std::max(PhaseEnd, Child.Clock);
      for (SimObserver *Observer : Observers)
        Observer->onThreadEnd(Child.Record);
    }

    // Joins are serialized on the main thread after the last child ends.
    MainClock =
        PhaseEnd + Latency.ThreadJoinCycles * Children.size();
    Parallel.EndCycle = MainClock;
    for (SimObserver *Observer : Observers)
      Observer->onPhaseEnd(Parallel);

    for (RunningThread &Child : Children)
      Result.Threads.push_back(Child.Record);
    Result.Phases.push_back(std::move(Parallel));
  }

  Main.Record.EndCycle = MainClock;
  for (SimObserver *Observer : Observers)
    Observer->onThreadEnd(Main.Record);
  Result.Threads.push_back(Main.Record);
  Result.TotalCycles = MainClock;
  Result.Coherence = Coherence.stats();

  // Keep thread records sorted by id for deterministic reporting.
  std::sort(Result.Threads.begin(), Result.Threads.end(),
            [](const ThreadRecord &A, const ThreadRecord &B) {
              return A.Tid < B.Tid;
            });
  return Result;
}
