//===- sim/Simulator.h - Multicore discrete-event simulator -----*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a ForkJoinProgram on a simulated multicore: one virtual core per
/// thread (the paper's Assumption 1), infinite private caches (Assumption 2),
/// and a per-thread virtual cycle clock. Threads within a parallel phase are
/// interleaved in virtual-time order (the runnable thread with the smallest
/// clock steps next), which yields realistic fine-grained interleavings of
/// contending writers without real concurrency — essential on a single-core
/// build host.
///
/// Observers (the Cheetah profiler, the full-instrumentation baseline) hook
/// thread lifecycle and every memory access; any cycles they return are
/// charged to the observed thread's clock, which is how profiling *overhead*
/// is modeled and measured (Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_SIM_SIMULATOR_H
#define CHEETAH_SIM_SIMULATOR_H

#include "mem/CacheGeometry.h"
#include "mem/MemoryAccess.h"
#include "mem/NumaTopology.h"
#include "sim/CoherenceModel.h"
#include "sim/ForkJoinProgram.h"
#include "sim/LatencyModel.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace cheetah {
namespace sim {

/// Exact per-thread execution record (what RDTSC-based interception measures
/// in the real system).
struct ThreadRecord {
  ThreadId Tid = 0;
  /// Index of the phase this thread ran in; main thread uses phase 0 but
  /// spans the program.
  uint32_t PhaseIndex = 0;
  uint64_t StartCycle = 0;
  uint64_t EndCycle = 0;
  uint64_t Instructions = 0;
  uint64_t MemoryAccesses = 0;
  /// Sum of all memory-access latencies (exact, not sampled).
  uint64_t MemoryCycles = 0;
  bool IsMain = false;

  /// Guarded like runtime::ThreadProfile::runtime(): a record inspected
  /// before the thread retired (EndCycle still 0) must read as zero, not
  /// wrap to ~2^64.
  uint64_t runtime() const {
    return EndCycle < StartCycle ? 0 : EndCycle - StartCycle;
  }
};

/// Exact record of one serial or parallel phase.
struct PhaseRecord {
  std::string Name;
  bool Parallel = false;
  uint64_t StartCycle = 0;
  uint64_t EndCycle = 0;
  std::vector<ThreadId> Members;

  uint64_t span() const {
    return EndCycle < StartCycle ? 0 : EndCycle - StartCycle;
  }
};

/// Everything a run produces.
struct SimulationResult {
  uint64_t TotalCycles = 0;
  std::vector<ThreadRecord> Threads;
  std::vector<PhaseRecord> Phases;
  CoherenceStats Coherence;
  /// NUMA accounting (zero on single-node topologies): accesses that missed
  /// the local cache on a page homed on another node, and the interconnect
  /// cycles they paid.
  uint64_t RemoteNumaAccesses = 0;
  uint64_t RemoteNumaExtraCycles = 0;

  const ThreadRecord &thread(ThreadId Tid) const;
};

/// Callback interface for tools riding along with a simulation. Cycle values
/// returned from the lifecycle/access hooks are charged to the thread,
/// modeling the tool's runtime overhead.
class SimObserver {
public:
  virtual ~SimObserver() = default;

  /// A thread (including the main thread, Tid 0) begins execution.
  /// \returns extra cycles charged to the thread (e.g. PMU setup syscalls).
  virtual uint64_t onThreadStart(ThreadId Tid, bool IsMain, uint64_t Now) {
    return 0;
  }

  /// A thread finished; \p Record holds its exact counters.
  virtual void onThreadEnd(const ThreadRecord &Record) {}

  /// A phase begins/ends. Parallel phases list their member thread ids.
  virtual void onPhaseBegin(const PhaseRecord &Phase) {}
  virtual void onPhaseEnd(const PhaseRecord &Phase) {}

  /// One memory access retired on \p Tid with the given coherence result.
  /// \returns extra cycles charged to the thread (e.g. a sampling trap).
  virtual uint64_t onMemoryAccess(ThreadId Tid, const MemoryAccess &Access,
                                  const CoherenceResult &Result,
                                  uint64_t Now) {
    return 0;
  }

  /// \p Count non-memory instructions retired on \p Tid.
  virtual void onInstructions(ThreadId Tid, uint64_t Count) {}
};

/// Discrete-event executor for ForkJoinPrograms.
class Simulator {
public:
  Simulator(const CacheGeometry &Geometry, const LatencyModel &Latency)
      : Geometry(Geometry), Latency(Latency) {}

  /// Attaches an observer; at most a handful are expected. Observers are
  /// invoked in attachment order and all overhead cycles accumulate.
  void addObserver(SimObserver *Observer);

  /// Attaches a NUMA topology: on multi-node topologies the simulator
  /// assigns each page a home node at its first touch (first-touch
  /// placement) and charges the LatencyModel's remote surcharges to
  /// cache-missing accesses issued from nodes other than the page's home —
  /// DRAM fetches pay RemoteDramExtraCycles, coherence activity pays
  /// RemoteTransferExtraCycles for the detour through the home node's
  /// directory (locality is keyed to the home, not the supplying cache).
  /// Every surcharge scales hop-proportionally with the topology's
  /// node-pair distance, normalized so the minimum remote distance pays
  /// exactly the base cost (uniform topologies reproduce the binary
  /// local/remote model bit for bit). The surcharge lands in the access
  /// latency *before* observers run, so sampled latencies carry the
  /// remote-DRAM cost. Null or single-node leaves behavior untouched.
  /// \p Topology must outlive the simulator.
  void setTopology(const NumaTopology *T) { Topology = T; }

  /// Runs \p Program to completion. May be called repeatedly; coherence,
  /// clock, and page-home state reset between runs.
  SimulationResult run(const ForkJoinProgram &Program);

private:
  struct RunningThread;

  uint64_t notifyThreadStart(ThreadId Tid, bool IsMain, uint64_t Now);
  uint64_t notifyAccess(ThreadId Tid, const MemoryAccess &Access,
                        const CoherenceResult &Result, uint64_t Now);

  /// Advances \p Thread by exactly one event. \returns false when the
  /// thread's generator is exhausted.
  bool step(RunningThread &Thread, CoherenceModel &Coherence,
            SimulationResult &Result);

  CacheGeometry Geometry;
  LatencyModel Latency;
  std::vector<SimObserver *> Observers;
  const NumaTopology *Topology = nullptr;
  /// First-touch page homes of the current run (page index -> node).
  std::unordered_map<uint64_t, NodeId> PageHomes;
};

} // namespace sim
} // namespace cheetah

#endif // CHEETAH_SIM_SIMULATOR_H
