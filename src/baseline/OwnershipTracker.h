//===- baseline/OwnershipTracker.h - Zhao-style ownership bits -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ownership-based invalidation tracker of Zhao et al. (VEE'11) that
/// motivates Cheetah's two-entry table (paper Section 2.3): each cache line
/// keeps one ownership bit per thread; a write by a thread while any other
/// thread's bit is set counts as an invalidation and resets ownership to the
/// writer. Functionally it counts the same invalidations; its problem is
/// memory — one bit per thread per line — which "cannot easily scale to more
/// than 32 threads". The ablation benchmark quantifies exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_BASELINE_OWNERSHIPTRACKER_H
#define CHEETAH_BASELINE_OWNERSHIPTRACKER_H

#include "mem/CacheGeometry.h"
#include "mem/MemoryAccess.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cheetah {
namespace baseline {

/// Per-line thread-ownership bitmaps with Zhao's invalidation rule.
class OwnershipTracker {
public:
  /// \param Geometry cache geometry for line indexing.
  /// \param MaxThreads capacity of each per-line bitmap.
  OwnershipTracker(const CacheGeometry &Geometry, uint32_t MaxThreads)
      : Geometry(Geometry), MaxThreads(MaxThreads),
        WordsPerLine((MaxThreads + 63) / 64) {}

  /// Records one access.
  /// \returns true if it incurred a cache invalidation.
  bool recordAccess(uint64_t Address, ThreadId Tid, AccessKind Kind);

  /// Total invalidations counted.
  uint64_t invalidations() const { return Invalidations; }

  /// Invalidations on the line containing \p Address.
  uint64_t invalidationsAt(uint64_t Address) const;

  /// Bytes of ownership metadata per tracked line (the scalability metric
  /// of the ablation; compare with the two-entry table's constant size).
  size_t bytesPerLine() const { return WordsPerLine * sizeof(uint64_t); }

  /// Total metadata bytes currently allocated.
  size_t metadataBytes() const;

  /// Number of tracked lines.
  size_t trackedLines() const { return Lines.size(); }

private:
  struct LineOwnership {
    std::vector<uint64_t> Bits;
    uint64_t Invalidations = 0;
  };

  LineOwnership &lineFor(uint64_t Address);

  CacheGeometry Geometry;
  uint32_t MaxThreads;
  size_t WordsPerLine;
  std::unordered_map<uint64_t, LineOwnership> Lines;
  uint64_t Invalidations = 0;
};

} // namespace baseline
} // namespace cheetah

#endif // CHEETAH_BASELINE_OWNERSHIPTRACKER_H
