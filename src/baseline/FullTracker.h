//===- baseline/FullTracker.h - Predator-style full tracking ---*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Predator-style instrumentation baseline (paper Section 6.1): instead of
/// sampling, *every* memory access is analyzed. It reuses Cheetah's
/// detection machinery with two deliberate differences that mirror the
/// real Predator:
///   - no sampling: each access pays an instrumentation cost, which is why
///     such tools run ~5-6x slower (the fig4/ablation contrast);
///   - no parallel-phase gating: objects initialized by the main thread and
///     then read by children are (wrongly) seen as shared, the false
///     positive mode Cheetah's phase gating removes (Section 2.4).
///
/// It finds strictly more instances (it never misses for lack of samples),
/// which the sampling-recall ablation quantifies.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_BASELINE_FULLTRACKER_H
#define CHEETAH_BASELINE_FULLTRACKER_H

#include "core/detect/Detector.h"
#include "core/detect/SharingClassifier.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cheetah {
namespace baseline {

/// Tunables for the full-instrumentation baseline.
struct FullTrackerConfig {
  /// Cycles charged per instrumented access (shadow lookup + metadata
  /// update on every load/store).
  uint64_t PerAccessCycles = 60;
  /// Same susceptibility threshold as Cheetah for a fair comparison.
  uint32_t WriteThreshold = 2;
};

/// One detected shared line from the full tracker.
struct FullTrackerFinding {
  uint64_t LineBase = 0;
  core::SharingKind Kind = core::SharingKind::NotShared;
  uint64_t Invalidations = 0;
  uint64_t Accesses = 0;
  uint32_t Threads = 0;
};

/// Every-access detection observer.
class FullTracker : public sim::SimObserver {
public:
  FullTracker(const CacheGeometry &Geometry,
              std::vector<core::ShadowRegion> Regions,
              const FullTrackerConfig &Config);

  /// Per-line findings with at least \p MinInvalidations, sorted by
  /// invalidation count (highest first). Quiesces the detector first so
  /// sharded-build accumulation is folded back before the scan.
  std::vector<FullTrackerFinding> findings(uint64_t MinInvalidations = 1);

  /// Total accesses instrumented.
  uint64_t accessesInstrumented() const { return Accesses; }

  /// Total invalidations counted.
  uint64_t invalidations() const { return Detect.stats().Invalidations; }

  const core::ShadowMemory &shadow() const { return Shadow; }

  // SimObserver implementation.
  uint64_t onMemoryAccess(ThreadId Tid, const MemoryAccess &Access,
                          const sim::CoherenceResult &Result,
                          uint64_t Now) override;

private:
  CacheGeometry Geometry;
  core::ShadowMemory Shadow;
  core::Detector Detect;
  core::SharingClassifier Classifier;
  FullTrackerConfig Config;
  uint64_t Accesses = 0;
};

} // namespace baseline
} // namespace cheetah

#endif // CHEETAH_BASELINE_FULLTRACKER_H
