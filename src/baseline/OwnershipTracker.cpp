//===- baseline/OwnershipTracker.cpp - Zhao-style ownership bits ----------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/OwnershipTracker.h"

#include "support/Assert.h"

using namespace cheetah;
using namespace cheetah::baseline;

OwnershipTracker::LineOwnership &
OwnershipTracker::lineFor(uint64_t Address) {
  LineOwnership &Line = Lines[Geometry.lineIndex(Address)];
  if (Line.Bits.empty())
    Line.Bits.assign(WordsPerLine, 0);
  return Line;
}

bool OwnershipTracker::recordAccess(uint64_t Address, ThreadId Tid,
                                    AccessKind Kind) {
  CHEETAH_ASSERT(Tid < MaxThreads, "thread id exceeds bitmap capacity");
  LineOwnership &Line = lineFor(Address);
  size_t Word = Tid / 64;
  uint64_t Bit = 1ull << (Tid % 64);

  if (Kind == AccessKind::Read) {
    Line.Bits[Word] |= Bit;
    return false;
  }

  // Write: does any *other* thread own the line?
  bool OthersOwn = false;
  for (size_t I = 0; I < Line.Bits.size(); ++I) {
    uint64_t Mask = Line.Bits[I];
    if (I == Word)
      Mask &= ~Bit;
    if (Mask) {
      OthersOwn = true;
      break;
    }
  }
  // "When a thread updates a cache line owned by others, this access incurs
  // a cache invalidation, and then resets the ownership to the current
  // thread." A first write to an unowned line also resets ownership and —
  // to stay comparable with the two-entry table's convention — counts as an
  // invalidation unless the writer already solely owned it.
  bool SelfOwned = (Line.Bits[Word] & Bit) != 0;
  bool Invalidation = OthersOwn || !SelfOwned;
  for (uint64_t &W : Line.Bits)
    W = 0;
  Line.Bits[Word] = Bit;
  if (Invalidation) {
    ++Line.Invalidations;
    ++Invalidations;
  }
  return Invalidation;
}

uint64_t OwnershipTracker::invalidationsAt(uint64_t Address) const {
  auto It = Lines.find(Geometry.lineIndex(Address));
  return It == Lines.end() ? 0 : It->second.Invalidations;
}

size_t OwnershipTracker::metadataBytes() const {
  size_t Bytes = 0;
  for (const auto &[Index, Line] : Lines) {
    (void)Index;
    Bytes += Line.Bits.size() * sizeof(uint64_t) + sizeof(LineOwnership);
  }
  return Bytes;
}
