//===- baseline/FullTracker.cpp - Predator-style full tracking ------------===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/FullTracker.h"

#include <algorithm>

using namespace cheetah;
using namespace cheetah::baseline;

FullTracker::FullTracker(const CacheGeometry &Geometry,
                         std::vector<core::ShadowRegion> Regions,
                         const FullTrackerConfig &Config)
    : Geometry(Geometry), Shadow(Geometry, std::move(Regions)),
      Detect(Geometry, Shadow,
             core::DetectorConfig{Config.WriteThreshold,
                                  /*OnlyParallelPhases=*/false}),
      Config(Config) {}

uint64_t FullTracker::onMemoryAccess(ThreadId Tid, const MemoryAccess &Access,
                                     const sim::CoherenceResult &Result,
                                     uint64_t Now) {
  ++Accesses;
  pmu::Sample Sample;
  Sample.Address = Access.Address;
  Sample.Tid = Tid;
  Sample.IsWrite = Access.isWrite();
  Sample.LatencyCycles = static_cast<uint32_t>(Result.LatencyCycles);
  Sample.Timestamp = Now;
  // Predator-like tools analyze every access with no phase awareness.
  Detect.handleSample(Sample, /*InParallelPhase=*/true, Access.Size);
  return Config.PerAccessCycles;
}

std::vector<FullTrackerFinding>
FullTracker::findings(uint64_t MinInvalidations) {
  // Fold any per-thread shards back before scanning detail (no-op in the
  // shared-table builds).
  Detect.quiesce();
  std::vector<FullTrackerFinding> Findings;
  Shadow.forEachDetail(
      [&](uint64_t LineBase, const core::CacheLineInfo &Info) {
        if (Info.invalidations() < MinInvalidations)
          return;
        core::LineClassification Verdict = Classifier.classify(Info);
        FullTrackerFinding Finding;
        Finding.LineBase = LineBase;
        Finding.Kind = Verdict.Kind;
        Finding.Invalidations = Info.invalidations();
        Finding.Accesses = Info.accesses();
        Finding.Threads = Verdict.Threads;
        Findings.push_back(Finding);
      });
  std::sort(Findings.begin(), Findings.end(),
            [](const FullTrackerFinding &A, const FullTrackerFinding &B) {
              return A.Invalidations > B.Invalidations;
            });
  return Findings;
}
