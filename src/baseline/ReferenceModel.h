//===- baseline/ReferenceModel.h - Full-set invalidation model -*- C++ -*-===//
//
// Part of the Cheetah reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately naive reference implementation of the paper's invalidation
/// rule: track the *complete set* of threads that accessed a line since the
/// last invalidation. A write invalidates iff the set is empty, contains a
/// different thread, or contains two or more threads — exactly the states
/// the two-entry table encodes. Property tests assert that CacheLineTable
/// matches this model invalidation-for-invalidation on arbitrary access
/// streams, which is the formal content of the paper's "at most two entries
/// suffice" claim.
///
//===----------------------------------------------------------------------===//

#ifndef CHEETAH_BASELINE_REFERENCEMODEL_H
#define CHEETAH_BASELINE_REFERENCEMODEL_H

#include "mem/MemoryAccess.h"

#include <set>

namespace cheetah {
namespace baseline {

/// Full recent-accessor-set model for one cache line.
class ReferenceLineModel {
public:
  /// Applies the paper's rule with an unbounded accessor set.
  /// \returns true when the (write) access incurs an invalidation.
  bool recordAccess(ThreadId Tid, AccessKind Kind) {
    if (Kind == AccessKind::Read) {
      Accessors.insert(Tid);
      return false;
    }
    // Write by Tid: invalidation unless Tid is the sole recent accessor.
    bool SoleSelf = Accessors.size() == 1 && *Accessors.begin() == Tid;
    if (SoleSelf)
      return false;
    Accessors.clear();
    Accessors.insert(Tid);
    ++Invalidations;
    return true;
  }

  uint64_t invalidations() const { return Invalidations; }
  const std::set<ThreadId> &accessors() const { return Accessors; }

private:
  std::set<ThreadId> Accessors;
  uint64_t Invalidations = 0;
};

} // namespace baseline
} // namespace cheetah

#endif // CHEETAH_BASELINE_REFERENCEMODEL_H
